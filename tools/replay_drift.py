#!/usr/bin/env python3
"""Time-ordered distribution-shift replay against the self-healing loop.

Builds an artifact on the *pre-shift* family mix of a shift schedule, then
replays the schedule's time-ordered trace stream — every trace labeled —
against two daemons:

1. **loop** — drift monitor + retrain supervisor enabled.  The stream keeps
   flowing while the loop detects the shift, retrains in a subprocess,
   canaries the candidate, and promotes it.  The replay extends past the
   nominal stream length (same deterministic index sequence) until a
   promotion lands and settles, so slow retrains are measured, not missed.
2. **frozen** — the identical trace sequence against a plain daemon, so the
   accuracy-over-time delta is attributable to the loop alone.

Results go to ``BENCH_drift.json``: windowed accuracy curves for both runs,
detection latency (traces between the injected shift and the first drift
verdict), retrain / promotion / rollback counts, and the hard assertions —
the loop must detect the shift, promote at least one canary, finish at
least ``--min-delta`` windowed accuracy above the frozen replay, and neither
daemon may crash or drop a request.

Usage::

    PYTHONPATH=src python tools/replay_drift.py [--quick]
        [--schedule evasive_shift:150] [--json BENCH_drift.json]

Exit status: 0 all assertions hold, 1 an assertion failed, 2 operator error.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.errors import ReproError  # noqa: E402
from repro.features import Normalizer, build_dataset  # noqa: E402
from repro.gen.shift import load_schedule  # noqa: E402
from repro.model import ArtifactStore, margin_scales, train_ensemble  # noqa: E402
from repro.telemetry import get_logger, log_event  # noqa: E402

logger = get_logger("repro.tools.replay_drift")

BENCH_VERSION = 1


# ---------------------------------------------------------------------------
# setup
# ---------------------------------------------------------------------------


def pretrain_artifact(schedule, args, artifact_root: Path) -> str:
    """Train an ensemble on the schedule's phase-0 stream and publish it."""
    pre = schedule.pre_shift()  # never sample past the shift: the baseline
    traces = [pre.synthesize(args.train_seed, i) for i in range(args.train_traces)]
    dataset = build_dataset(traces)
    normalizer = Normalizer().fit(dataset.X)
    Z = normalizer.transform(dataset.X)
    members = train_ensemble(
        Z,
        dataset.y,
        n_features=dataset.n_features,
        seeds=[args.train_seed * 1000 + k for k in range(args.members)],
        model_kwargs={"theta": 5.0},
        fit_kwargs={"epochs": args.epochs},
    )
    models = [m.model for m in members]
    published = ArtifactStore(artifact_root).publish(
        models,
        normalizer,
        margin_scales(models, Z),
        meta={"bench": "replay_drift", "train_traces": args.train_traces},
    )
    log_event(
        logger,
        "replay_drift.pretrained",
        version=published.version,
        traces=args.train_traces,
    )
    return published.version


def spawn_daemon(args, artifact_root: Path, out_dir: Path, *, loop: bool):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "repro.serve",
        "--artifact-root",
        str(artifact_root),
        "--port",
        "0",
        "--max-queue",
        "128",
        "--max-batch",
        "16",
        "--request-timeout",
        "30",
        "--reload-poll",
        "0.2",
    ]
    if loop:
        cmd += [
            "--drift-window",
            str(args.drift_window),
            "--drift-min-feedback",
            str(max(8, args.drift_window // 4)),
            "--drift-psi-threshold",
            "0.5",
            "--drift-accuracy-floor",
            "0.8",
            # the replay measures retrain->canary->promote; rollback (its own
            # failure-mode test) would preempt the retrain we are measuring
            "--drift-rollback-floor",
            "0.0",
            "--drift-quarantine-dir",
            str(out_dir / "drift_quarantine"),
            "--supervise",
            "--retrain-mode",
            "partial",
            "--retrain-passes",
            str(args.retrain_passes),
            "--retrain-timeout",
            "120",
            "--retrain-min-traces",
            str(args.retrain_min_traces),
            "--retrain-backoff",
            "1",
            "--canary-min-traces",
            str(args.canary_min_traces),
            "--canary-margin",
            "0.05",
            "--canary-floor",
            "0.6",
            "--canary-timeout",
            "45",
        ]
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    try:
        port = int(json.loads(line)["listening"]["port"])
    except (ValueError, KeyError, TypeError):
        proc.kill()
        raise SystemExit(f"daemon did not announce a port (got {line!r})")
    return proc, port


def stop_daemon(proc) -> dict:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
    counters = {}
    for line in (proc.stdout.read() or "").splitlines():
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if doc.get("stopped"):
            counters = doc.get("counters", {})
    return counters


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------


async def probe(port: int, target: str) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {target} HTTP/1.1\r\nHost: replay\r\n\r\n".encode())
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(1 << 17), timeout=5)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(body) if body else {}


async def wait_ready(port: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            status, _ = await probe(port, "/readyz")
            if status == 200:
                return
        except OSError:
            pass
        await asyncio.sleep(0.1)
    raise SystemExit("daemon never became ready")


class Replay:
    """Outcome of one time-ordered replay."""

    def __init__(self):
        self.correct: list[int] = []  # 1/0 per trace, stream order
        self.artifact_per_trace: list[str] = []
        self.unanswered = 0
        self.not_ok = 0
        self.first_verdict_index: int | None = None
        self.first_promotion_index: int | None = None
        self.metrics: dict = {}

    def windowed_accuracy(self, window: int) -> list[dict]:
        out = []
        for start in range(0, len(self.correct) - window + 1, window):
            chunk = self.correct[start : start + window]
            out.append(
                {"start": start, "end": start + window, "accuracy": sum(chunk) / len(chunk)}
            )
        return out

    def final_accuracy(self, window: int) -> float:
        tail = self.correct[-window:]
        return sum(tail) / len(tail) if tail else float("nan")


async def replay_stream(
    schedule, args, port: int, *, track_loop: bool, total: int | None = None
) -> Replay:
    """Send the schedule's stream one trace at a time, strictly ordered.

    With ``track_loop`` the stream extends itself past the nominal length
    (up to ``--max-traces``) until a promotion has landed and
    ``--settle-traces`` further traces have been scored against the promoted
    model; the returned replay's length is then the ``total`` the frozen run
    must replay for an apples-to-apples comparison.
    """
    replay = Replay()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    nominal = total if total is not None else args.traces
    index = 0
    promoted_at: int | None = None
    try:
        while True:
            if index >= nominal:
                if not track_loop or total is not None:
                    break
                if index >= args.max_traces:
                    break
                if promoted_at is not None and index >= promoted_at + args.settle_traces:
                    break
            trace = schedule.synthesize(args.replay_seed, index)
            doc = {
                "id": f"t{index}",
                "rows": np.asarray(trace.rows, dtype=np.float64).tolist(),
                "label": int(trace.label),
                "family": trace.attack_class or trace.program,
            }
            writer.write(json.dumps(doc).encode() + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=60)
            if not line.strip():
                replay.unanswered += 1
                break
            response = json.loads(line)
            if not response.get("ok"):
                replay.not_ok += 1
                replay.correct.append(0)
                replay.artifact_per_trace.append("?")
            else:
                replay.correct.append(int(response["verdict"] == trace.label))
                replay.artifact_per_trace.append(response.get("artifact", "?"))
            if track_loop and index % args.poll_every == 0:
                _, metrics = await probe(port, "/metricsz")
                drift = metrics.get("drift") or {}
                sup = metrics.get("supervisor") or {}
                if replay.first_verdict_index is None and drift.get("drift_verdicts", 0) >= 1:
                    replay.first_verdict_index = index
                if replay.first_promotion_index is None and sup.get("promotions", 0) >= 1:
                    replay.first_promotion_index = index
                    promoted_at = index
            index += 1
    finally:
        writer.close()
    _, replay.metrics = await probe(port, "/metricsz")
    if track_loop:
        drift = replay.metrics.get("drift") or {}
        sup = replay.metrics.get("supervisor") or {}
        if replay.first_verdict_index is None and drift.get("drift_verdicts", 0) >= 1:
            replay.first_verdict_index = index
        if replay.first_promotion_index is None and sup.get("promotions", 0) >= 1:
            replay.first_promotion_index = index
    return replay


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--schedule", default="novel_probe_shift:150", help="builtin:<at> or JSON path")
    parser.add_argument("--out", default="runs/drift-replay")
    parser.add_argument("--json", default="BENCH_drift.json")
    parser.add_argument("--traces", type=int, default=900, help="nominal stream length")
    parser.add_argument("--max-traces", type=int, default=2400, help="extension cap for the loop run")
    parser.add_argument("--settle-traces", type=int, default=150, help="traces scored after promotion")
    parser.add_argument("--eval-window", type=int, default=75, help="accuracy-curve window (traces)")
    # window of 100 keeps PSI sampling noise (~(bins-1)*2/window ~= 0.18)
    # under the 0.5 replay threshold; smaller windows false-positive on noise
    parser.add_argument("--drift-window", type=int, default=100)
    parser.add_argument("--train-traces", type=int, default=240)
    parser.add_argument("--train-seed", type=int, default=11)
    parser.add_argument("--replay-seed", type=int, default=29)
    parser.add_argument("--members", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--retrain-passes", type=int, default=3)
    parser.add_argument("--retrain-min-traces", type=int, default=60)
    parser.add_argument("--canary-min-traces", type=int, default=24)
    parser.add_argument("--poll-every", type=int, default=10, help="metricsz poll cadence (traces)")
    parser.add_argument("--min-delta", type=float, default=0.05,
                        help="required final windowed-accuracy gain of loop over frozen")
    parser.add_argument("--quick", action="store_true", help="shrink the replay for a CI smoke run")
    parser.add_argument("--check", action="store_true",
                        help="run assertions only; do not write the report")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quick:
        args.traces = min(args.traces, 700)
        args.max_traces = min(args.max_traces, 1800)
        args.train_traces = min(args.train_traces, 200)
        args.settle_traces = min(args.settle_traces, 120)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    artifact_root = out_dir / "artifact"

    try:
        schedule = load_schedule(args.schedule)
    except ReproError as exc:
        print(f"bad schedule: [{exc.code}] {exc}", file=sys.stderr)
        return 2
    shift_points = schedule.shift_points()
    if not shift_points:
        print("schedule has no shift point; nothing to detect", file=sys.stderr)
        return 2
    shift_at = shift_points[0]

    try:
        base_version = pretrain_artifact(schedule, args, artifact_root)
    except ReproError as exc:
        print(f"cannot pretrain artifact: [{exc.code}] {exc}", file=sys.stderr)
        return 2

    # ---- loop run: drift monitor + supervisor on -----------------------
    proc, port = spawn_daemon(args, artifact_root, out_dir, loop=True)
    try:
        asyncio.run(wait_ready(port))
        loop_replay = asyncio.run(replay_stream(schedule, args, port, track_loop=True))
    finally:
        loop_counters = stop_daemon(proc)
    loop_exit = proc.returncode
    total = len(loop_replay.correct)

    # ---- frozen run: identical trace sequence, plain daemon ------------
    # a fresh store so the frozen daemon cannot pick up the loop's promotion
    frozen_root = out_dir / "artifact-frozen"
    store = ArtifactStore(artifact_root)
    loaded = store.load(base_version)
    ArtifactStore(frozen_root).publish(
        loaded.models, loaded.normalizer, loaded.scales, meta={"bench": "frozen-baseline"}
    )
    proc, port = spawn_daemon(args, frozen_root, out_dir, loop=False)
    try:
        asyncio.run(wait_ready(port))
        frozen_replay = asyncio.run(
            replay_stream(schedule, args, port, track_loop=False, total=total)
        )
    finally:
        frozen_counters = stop_daemon(proc)
    frozen_exit = proc.returncode

    # ---- evaluate ------------------------------------------------------
    window = args.eval_window
    loop_final = loop_replay.final_accuracy(window)
    frozen_final = frozen_replay.final_accuracy(window)
    delta = loop_final - frozen_final
    sup = loop_replay.metrics.get("supervisor") or {}
    drift = loop_replay.metrics.get("drift") or {}
    detection_latency = (
        loop_replay.first_verdict_index - shift_at
        if loop_replay.first_verdict_index is not None
        else None
    )

    failures: list[str] = []
    if loop_exit != 0:
        failures.append(f"loop daemon exited {loop_exit}, expected 0")
    if frozen_exit != 0:
        failures.append(f"frozen daemon exited {frozen_exit}, expected 0")
    if loop_replay.unanswered or frozen_replay.unanswered:
        failures.append(
            f"unanswered requests: loop={loop_replay.unanswered} frozen={frozen_replay.unanswered}"
        )
    if loop_replay.not_ok or frozen_replay.not_ok:
        failures.append(
            f"non-ok scoring responses: loop={loop_replay.not_ok} frozen={frozen_replay.not_ok}"
        )
    if drift.get("drift_verdicts", 0) < 1:
        failures.append("the loop never detected the injected shift (drift_verdicts == 0)")
    if sup.get("promotions", 0) < 1:
        failures.append("no canary was ever promoted (promotions == 0)")
    if not (delta >= args.min_delta):
        failures.append(
            f"loop final windowed accuracy {loop_final:.3f} did not beat frozen "
            f"{frozen_final:.3f} by {args.min_delta} (delta {delta:+.3f})"
        )

    doc = {
        "version": BENCH_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "schedule": {"spec": args.schedule, "shift_at": shift_at, **schedule.to_dict()},
        "config": {
            "traces_nominal": args.traces,
            "traces_replayed": total,
            "eval_window": window,
            "drift_window": args.drift_window,
            "train_traces": args.train_traces,
            "members": args.members,
            "retrain_min_traces": args.retrain_min_traces,
            "canary_min_traces": args.canary_min_traces,
            "min_delta": args.min_delta,
            "quick": args.quick,
        },
        "base_artifact": base_version,
        "loop": {
            "accuracy_curve": loop_replay.windowed_accuracy(window),
            "final_windowed_accuracy": round(loop_final, 4),
            "first_drift_verdict_at_trace": loop_replay.first_verdict_index,
            "detection_latency_traces": detection_latency,
            "first_promotion_at_trace": loop_replay.first_promotion_index,
            "artifacts_served": sorted(set(loop_replay.artifact_per_trace)),
            "drift": drift,
            "supervisor": sup,
            "daemon_exit_code": loop_exit,
            "daemon_counters": loop_counters,
        },
        "frozen": {
            "accuracy_curve": frozen_replay.windowed_accuracy(window),
            "final_windowed_accuracy": round(frozen_final, 4),
            "daemon_exit_code": frozen_exit,
            "daemon_counters": frozen_counters,
        },
        "delta_final_windowed_accuracy": round(delta, 4),
        "assertions_failed": failures,
        "crashes": int(loop_exit != 0) + int(frozen_exit != 0),
    }
    if not args.check:
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")

    print(
        f"replayed {total} traces (shift at {shift_at}): "
        f"loop {loop_final:.3f} vs frozen {frozen_final:.3f} (delta {delta:+.3f})  "
        f"detection latency {detection_latency} traces  "
        f"retrains {sup.get('retrains_succeeded', 0)}/{sup.get('retrains_started', 0)}  "
        f"promotions {sup.get('promotions', 0)}  rollbacks {sup.get('rollbacks', 0)}"
    )
    if failures:
        for failure in failures:
            print(f"ASSERTION FAILED: {failure}", file=sys.stderr)
        return 1
    print("all drift-replay assertions hold"
          + ("" if args.check else f"; report -> {args.json}"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
