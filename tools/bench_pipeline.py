#!/usr/bin/env python3
"""Benchmark the pipeline: ingest caching/parallelism AND training kernels.

Runs ``repro.pipeline`` over the same corpus in two groups —

ingest group (varies decode path only):

1. ``cold_serial``    fresh cache, ``--workers 1`` (populates cache A)
2. ``warm_serial``    cache A again: every decode is a cache hit
3. ``cold_parallel``  fresh cache, ``--workers N`` (populates cache B)
4. ``warm_parallel``  cache B again, ``--workers N``

dataset-cache group (decode cache A warm, assembled-dataset tier varies):

5. ``warm_dataset_build``  decode cache warm, fresh dataset cache — pays
   assembly once and publishes the columnar entry
6. ``warm_dataset_cache``  dataset cache warm: ingest+featurize collapse to
   a key sweep + one ``np.load(mmap_mode="r")``

train group (cache A stays warm, training path varies):

7. ``warm_ref_train``       ``--fit-kernel reference`` — the naive
   per-sample spec; its ``train_s`` is the training baseline
8. ``warm_train_parallel``  ``--train-workers N --train-shm off`` — pooled
   member training over the legacy per-worker broadcast transport
9. ``warm_train_shm``       ``--train-workers N --train-shm on`` — pooled
   member training attaching to one shared-memory bins matrix
10. ``warm_minibatch``      ``--fit-mode minibatch`` — batched rule (opt-in)

With ``--stage-corpus gen:COUNT[...]`` the report gains a ``stage_timings``
section: a deterministic synthetic corpus is generated, run cold (both
caches fresh), warm over the decode cache alone (the pre-dataset-cache warm
path), and warm over the dataset cache — recording per-stage wall clocks and
the ingest+featurize speedup of the mmap tier over the per-trace decode
tier, with all three runs required to agree on detection metrics exactly.

— then writes a machine-readable ``BENCH_pipeline.json`` (elapsed and
per-stage timings, speedup ratios, cache hit counts) so successive PRs have
a perf trajectory, and cross-checks consistency: every run except
``warm_minibatch`` must produce *identical* detection metrics (cache,
parallelism, and the online kernel change wall-clock only), and
``warm_minibatch`` must stay within the accuracy tolerance of the baseline.

Usage::

    PYTHONPATH=src python tools/bench_pipeline.py [--trace-dir .trace_cache]
        [--corpus DIR | --corpus gen:COUNT[:families=F1,F2][:seed=N]]
        [--workers 4] [--epochs 20] [--n-models 5] [--out runs/bench]
        [--json BENCH_pipeline.json] [--quick] [--check]

``--corpus`` benches an arbitrary corpus instead of the fixed 168-file set:
pass a directory (flat or ``repro.gen``-sharded), or a ``gen:`` spec that
materializes a deterministic synthetic corpus under ``--out`` first (e.g.
``gen:2000:families=attacks:seed=11``).  ``--quick`` shrinks epochs/models
for a fast CI smoke run; ``--check`` verifies the consistency rules without
writing the report.

Exit status: 0 on success, 1 when the runs disagree on detection metrics,
2 on operator error.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.pipeline import PipelineConfig, run_pipeline  # noqa: E402
from repro.telemetry import get_logger, log_event  # noqa: E402

logger = get_logger("repro.tools.bench")

BENCH_VERSION = 4

#: metrics fields that must be identical across every benchmarked run
#: (except ``warm_minibatch``, which is held to the accuracy tolerance)
_STABLE_KEYS = ("ingest", "dataset", "training", "metrics")

#: runs exempt from the exact-match rule: a different training order is
#: allowed to move trace_accuracy within this absolute tolerance
_TOLERANT_RUNS = ("warm_minibatch",)


def _stable_view(metrics: dict) -> dict:
    view = {k: metrics[k] for k in _STABLE_KEYS}
    # cache hit counts legitimately differ between cold and warm runs
    view["ingest"] = {k: v for k, v in view["ingest"].items() if k != "cache"}
    return view


def _one_run(
    name: str, args, *, cache_dir: Path, out_root: Path, overrides: dict
) -> tuple[dict, dict]:
    config = PipelineConfig(
        trace_dir=args.trace_dir,
        out_dir=str(out_root / name),
        epochs=args.epochs,
        seed=args.seed,
        n_models=args.n_models,
        cache_dir=str(cache_dir),
        faults=FaultPlan.parse(args.faults) if args.faults else None,
        **overrides,
    )
    t0 = time.monotonic()
    metrics = run_pipeline(config)
    elapsed = time.monotonic() - t0
    row = {
        "workers": config.workers,
        "fit_mode": config.fit_mode,
        "fit_kernel": config.fit_kernel,
        "train_workers": config.train_workers,
        "train_shm": config.train_shm,
        "elapsed_s": round(elapsed, 3),
        "timings": metrics["timings"],
        "cache": metrics["ingest"].get("cache"),
        "dataset_cache": (
            {k: metrics["dataset_cache"][k] for k in ("hit",) if k in metrics["dataset_cache"]}
            if "dataset_cache" in metrics
            else None
        ),
        "loaded": metrics["ingest"]["loaded"],
        "quarantined": metrics["ingest"]["quarantined"],
        "trace_accuracy": metrics["metrics"]["trace_accuracy"],
    }
    log_event(
        logger,
        "bench.run",
        name=name,
        workers=config.workers,
        elapsed=f"{elapsed:.2f}",
        ingest=f"{metrics['timings']['ingest_s']:.2f}",
        train=f"{metrics['timings']['train_s']:.2f}",
    )
    return row, metrics


def _ratio(a: float, b: float) -> float:
    return round(a / b, 2) if b > 0 else float("inf")


def _materialize_gen(spec: str, dest: Path, *, seed: int, workers: int) -> str:
    """Generate the corpus a ``gen:COUNT[:families=...][:seed=N]`` spec
    describes under ``dest`` and return its path."""
    from repro.gen import generate_corpus

    parts = spec.split(":")[1:]
    if not parts or not parts[0].isdigit():
        raise ValueError(f"bad corpus spec {spec!r}: want gen:COUNT[...]")
    count = int(parts[0])
    families: object = "all"
    for part in parts[1:]:
        key, _, value = part.partition("=")
        if key == "families" and value:
            families = [f for f in value.split(",") if f]
        elif key == "seed" and value:
            seed = int(value)
        else:
            raise ValueError(f"bad corpus option {part!r}")
    report = generate_corpus(
        dest, families=families, count=count, seed=seed, workers=workers
    )
    log_event(
        logger,
        "bench.gen_corpus",
        out=str(dest),
        count=report.count,
        digest=report.corpus_digest[:12],
        elapsed=f"{report.elapsed_s:.2f}",
    )
    return str(dest)


def _resolve_corpus(args, out_root: Path) -> str:
    """Apply ``--corpus``: a directory overrides ``--trace-dir``; a
    ``gen:COUNT[:families=...][:seed=N]`` spec materializes a deterministic
    synthetic corpus under ``--out`` first."""
    if args.corpus is None:
        return args.trace_dir
    if not args.corpus.startswith("gen:"):
        return args.corpus
    return _materialize_gen(
        args.corpus, out_root / "gen_corpus", seed=args.seed, workers=args.workers
    )


def _ingest_featurize(row: dict) -> float:
    return row["timings"]["ingest_s"] + row["timings"]["featurize_s"]


def _stage_section(args, out_root: Path) -> dict:
    """The ``--stage-corpus`` deep-dive: cold vs decode-cache-warm vs
    dataset-cache-warm stage timings over one (usually large) corpus."""
    spec = args.stage_corpus
    if spec.startswith("gen:"):
        corpus = _materialize_gen(
            spec, out_root / "stage_corpus", seed=args.seed, workers=args.workers
        )
    else:
        corpus = spec
    n_files = len(sorted(Path(corpus).glob("**/*.pkl")))
    if n_files == 0:
        raise ValueError(f"no trace files under {corpus}")
    decode_cache = out_root / "stage_decode_cache"
    dataset_cache = out_root / "stage_dataset_cache"
    for cache in (decode_cache, dataset_cache):
        shutil.rmtree(cache, ignore_errors=True)

    stage_args = argparse.Namespace(**vars(args))
    stage_args.trace_dir = corpus
    plan = [
        # populate both tiers; single-shot because it does the populating
        ("stage_cold", 1, {"workers": 1, "dataset_cache_dir": str(dataset_cache)}),
        # the pre-dataset-cache warm path: per-trace decode-cache reads
        ("stage_warm_decode", 3, {"workers": 1}),
        # the mmap tier
        ("stage_warm_dataset", 3, {"workers": 1, "dataset_cache_dir": str(dataset_cache)}),
    ]
    runs: dict[str, dict] = {}
    stable: dict[str, dict] = {}
    for name, repeats, overrides in plan:
        # warm runs repeat timeit-style — keep the least-interfered-with
        # attempt (min ingest+featurize) so a busy box can't sink either side
        # of the comparison; every attempt must still agree on the metrics
        best: dict | None = None
        for _ in range(repeats):
            row, metrics = _one_run(
                name, stage_args, cache_dir=decode_cache, out_root=out_root,
                overrides=overrides,
            )
            view = _stable_view(metrics)
            if name in stable:
                assert view == stable[name], f"{name} repeat diverged"
            else:
                stable[name] = view
            if best is None or _ingest_featurize(row) < _ingest_featurize(best):
                best = row
        runs[name] = best
    assert runs["stage_warm_dataset"]["dataset_cache"]["hit"] is True
    diverged = [n for n in runs if stable[n] != stable["stage_cold"]]
    return {
        "corpus": str(corpus),
        "n_files": n_files,
        "runs": runs,
        "ingest_featurize_s": {n: round(_ingest_featurize(r), 3) for n, r in runs.items()},
        "speedups": {
            "dataset_vs_decode_warm_ingest_featurize": _ratio(
                _ingest_featurize(runs["stage_warm_decode"]),
                _ingest_featurize(runs["stage_warm_dataset"]),
            ),
            "dataset_vs_cold_ingest_featurize": _ratio(
                _ingest_featurize(runs["stage_cold"]),
                _ingest_featurize(runs["stage_warm_dataset"]),
            ),
            "dataset_vs_decode_warm_elapsed": _ratio(
                runs["stage_warm_decode"]["elapsed_s"],
                runs["stage_warm_dataset"]["elapsed_s"],
            ),
        },
        "diverged": diverged,
        "metrics_consistent": not diverged,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-dir", default=".trace_cache")
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="DIR|gen:SPEC",
        help="bench this corpus instead of --trace-dir: a directory, or "
        '"gen:COUNT[:families=F1,F2][:seed=N]" to generate one first',
    )
    parser.add_argument(
        "--stage-corpus",
        default=None,
        metavar="DIR|gen:SPEC",
        help="also record a cold / decode-warm / dataset-warm stage-timing "
        "section over this (usually large) corpus, e.g. gen:10000",
    )
    parser.add_argument("--out", default="runs/bench", help="scratch directory for run outputs")
    parser.add_argument("--json", default="BENCH_pipeline.json", help="benchmark report path")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--n-models", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--faults", default=None, help="optional fault spec for all runs")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink epochs/models/workers for a fast smoke run (CI)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify metric-consistency rules only; do not write the report",
    )
    parser.add_argument(
        "--minibatch-tolerance",
        type=float,
        default=0.15,
        metavar="ABS",
        help="allowed |trace_accuracy - baseline| for the minibatch run",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.epochs = min(args.epochs, 6)
        args.n_models = min(args.n_models, 2)
        args.workers = min(args.workers, 2)

    out_root = Path(args.out)
    try:
        args.trace_dir = _resolve_corpus(args, out_root)
    except (ValueError, ReproError) as exc:
        print(f"bad --corpus: {exc}", file=sys.stderr)
        return 2
    corpus = Path(args.trace_dir)
    n_files = len(sorted(corpus.glob("**/*.pkl")))
    if n_files == 0:
        print(f"no trace files under {corpus}", file=sys.stderr)
        return 2

    cache_a = out_root / "cache_serial"
    cache_b = out_root / "cache_parallel"
    dcache = out_root / "dataset_cache"
    for cache in (cache_a, cache_b, dcache):
        shutil.rmtree(cache, ignore_errors=True)

    plan = [
        ("cold_serial", cache_a, {"workers": 1}),
        ("warm_serial", cache_a, {"workers": 1}),
        ("cold_parallel", cache_b, {"workers": args.workers}),
        ("warm_parallel", cache_b, {"workers": args.workers}),
        (
            "warm_dataset_build",
            cache_a,
            {"workers": 1, "dataset_cache_dir": str(dcache)},
        ),
        (
            "warm_dataset_cache",
            cache_a,
            {"workers": 1, "dataset_cache_dir": str(dcache)},
        ),
        ("warm_ref_train", cache_a, {"workers": 1, "fit_kernel": "reference"}),
        (
            "warm_train_parallel",
            cache_a,
            {"workers": 1, "train_workers": args.workers, "train_shm": "off"},
        ),
        (
            "warm_train_shm",
            cache_a,
            {"workers": 1, "train_workers": args.workers, "train_shm": "on"},
        ),
        ("warm_minibatch", cache_a, {"workers": 1, "fit_mode": "minibatch"}),
    ]
    runs: dict[str, dict] = {}
    stable: dict[str, dict] = {}
    try:
        for name, cache, overrides in plan:
            runs[name], metrics = _one_run(
                name, args, cache_dir=cache, out_root=out_root, overrides=overrides
            )
            stable[name] = _stable_view(metrics)
    except ReproError as exc:
        print(f"benchmark failed: [{exc.code}] {exc}", file=sys.stderr)
        return 2

    baseline = stable["cold_serial"]
    exact_names = [name for name, _, _ in plan if name not in _TOLERANT_RUNS]
    diverged = [name for name in exact_names if stable[name] != baseline]
    accuracy_gap = abs(
        runs["warm_minibatch"]["trace_accuracy"] - runs["cold_serial"]["trace_accuracy"]
    )
    tolerant_ok = accuracy_gap <= args.minibatch_tolerance
    consistent = not diverged and tolerant_ok

    doc = {
        "version": BENCH_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "corpus": str(corpus),
        "n_files": n_files,
        "config": {
            "workers": args.workers,
            "epochs": args.epochs,
            "n_models": args.n_models,
            "seed": args.seed,
            "faults": args.faults,
            "quick": args.quick,
        },
        "runs": runs,
        "speedups": {
            "warm_vs_cold_serial": _ratio(
                runs["cold_serial"]["elapsed_s"], runs["warm_serial"]["elapsed_s"]
            ),
            "warm_vs_cold_serial_ingest": _ratio(
                runs["cold_serial"]["timings"]["ingest_s"],
                runs["warm_serial"]["timings"]["ingest_s"],
            ),
            "parallel_vs_serial_cold": _ratio(
                runs["cold_serial"]["elapsed_s"], runs["cold_parallel"]["elapsed_s"]
            ),
            "warm_parallel_vs_cold_serial": _ratio(
                runs["cold_serial"]["elapsed_s"], runs["warm_parallel"]["elapsed_s"]
            ),
            "train_blocked_vs_reference": _ratio(
                runs["warm_ref_train"]["timings"]["train_s"],
                runs["warm_serial"]["timings"]["train_s"],
            ),
            "train_minibatch_vs_reference": _ratio(
                runs["warm_ref_train"]["timings"]["train_s"],
                runs["warm_minibatch"]["timings"]["train_s"],
            ),
            "train_shm_vs_serial": _ratio(
                runs["warm_serial"]["timings"]["train_s"],
                runs["warm_train_shm"]["timings"]["train_s"],
            ),
            "train_shm_vs_broadcast_pool": _ratio(
                runs["warm_train_parallel"]["timings"]["train_s"],
                runs["warm_train_shm"]["timings"]["train_s"],
            ),
            "dataset_cache_vs_warm_serial_ingest_featurize": _ratio(
                _ingest_featurize(runs["warm_serial"]),
                _ingest_featurize(runs["warm_dataset_cache"]),
            ),
            "dataset_cache_vs_cold_serial": _ratio(
                runs["cold_serial"]["elapsed_s"],
                runs["warm_dataset_cache"]["elapsed_s"],
            ),
        },
        "minibatch_accuracy_gap": round(accuracy_gap, 6),
        "metrics_consistent": consistent,
    }
    stage_ok = True
    if args.stage_corpus:
        try:
            doc["stage_timings"] = _stage_section(args, out_root)
        except (ValueError, ReproError) as exc:
            print(f"bad --stage-corpus: {exc}", file=sys.stderr)
            return 2
        stage_ok = doc["stage_timings"]["metrics_consistent"]
    if not args.check:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")

    def _table(rows: dict[str, dict]) -> None:
        width = max(len(name) for name in rows)
        print(
            f"{'run':<{width}}  workers  elapsed_s  ingest_s  featurize_s"
            "  train_s  cache_hits  dataset"
        )
        for name, row in rows.items():
            hits = row["cache"]["hits"] if row["cache"] else 0
            dstate = "-"
            if row["dataset_cache"] is not None:
                dstate = "hit" if row["dataset_cache"]["hit"] else "miss"
            print(
                f"{name:<{width}}  {row['workers']:>7}  {row['elapsed_s']:>9.2f}"
                f"  {row['timings']['ingest_s']:>8.2f}"
                f"  {row['timings']['featurize_s']:>11.2f}"
                f"  {row['timings']['train_s']:>7.2f}  {hits:>10}  {dstate:>7}"
            )

    _table(runs)
    print(f"speedups: {json.dumps(doc['speedups'])}")
    if args.stage_corpus:
        stage = doc["stage_timings"]
        print(f"stage timings over {stage['corpus']} ({stage['n_files']} files):")
        _table(stage["runs"])
        print(f"stage speedups: {json.dumps(stage['speedups'])}")
    if diverged:
        print(f"metrics DIVERGED from baseline in: {diverged}", file=sys.stderr)
        return 1
    if not stage_ok:
        print(
            f"stage metrics DIVERGED from stage_cold in: "
            f"{doc['stage_timings']['diverged']}",
            file=sys.stderr,
        )
        return 1
    if not tolerant_ok:
        print(
            f"minibatch trace_accuracy gap {accuracy_gap:.4f} exceeds "
            f"tolerance {args.minibatch_tolerance}",
            file=sys.stderr,
        )
        return 1
    if args.check:
        print("metrics consistent across all runs (check mode; no report written)")
    else:
        print(f"metrics consistent across all runs; report -> {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
