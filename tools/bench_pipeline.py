#!/usr/bin/env python3
"""Benchmark the pipeline: cold serial vs warm cache vs parallel ingest.

Runs ``repro.pipeline`` four times over the same corpus —

1. ``cold_serial``    fresh cache, ``--workers 1`` (populates cache A)
2. ``warm_serial``    cache A again: every decode is a cache hit
3. ``cold_parallel``  fresh cache, ``--workers N`` (populates cache B)
4. ``warm_parallel``  cache B again, ``--workers N``

— then writes a machine-readable ``BENCH_pipeline.json`` (elapsed and
per-stage timings, speedup ratios, cache hit counts) so successive PRs have
a perf trajectory, and cross-checks that all four runs produced identical
detection metrics (cache and parallelism must change wall-clock only).

Usage::

    PYTHONPATH=src python tools/bench_pipeline.py [--trace-dir .trace_cache]
        [--workers 4] [--epochs 20] [--n-models 5] [--out runs/bench]
        [--json BENCH_pipeline.json]

Exit status: 0 on success, 1 when the runs disagree on detection metrics,
2 on operator error.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.pipeline import PipelineConfig, run_pipeline  # noqa: E402
from repro.telemetry import get_logger, log_event  # noqa: E402

logger = get_logger("repro.tools.bench")

BENCH_VERSION = 1

#: metrics fields that must be identical across every benchmarked run
_STABLE_KEYS = ("ingest", "dataset", "training", "metrics")


def _stable_view(metrics: dict) -> dict:
    view = {k: metrics[k] for k in _STABLE_KEYS}
    # cache hit counts legitimately differ between cold and warm runs
    view["ingest"] = {k: v for k, v in view["ingest"].items() if k != "cache"}
    return view


def _one_run(name: str, args, *, workers: int, cache_dir: Path, out_root: Path) -> tuple[dict, dict]:
    config = PipelineConfig(
        trace_dir=args.trace_dir,
        out_dir=str(out_root / name),
        epochs=args.epochs,
        seed=args.seed,
        n_models=args.n_models,
        workers=workers,
        cache_dir=str(cache_dir),
        faults=FaultPlan.parse(args.faults) if args.faults else None,
    )
    t0 = time.monotonic()
    metrics = run_pipeline(config)
    elapsed = time.monotonic() - t0
    row = {
        "workers": workers,
        "elapsed_s": round(elapsed, 3),
        "timings": metrics["timings"],
        "cache": metrics["ingest"].get("cache"),
        "loaded": metrics["ingest"]["loaded"],
        "quarantined": metrics["ingest"]["quarantined"],
        "trace_accuracy": metrics["metrics"]["trace_accuracy"],
    }
    log_event(
        logger,
        "bench.run",
        name=name,
        workers=workers,
        elapsed=f"{elapsed:.2f}",
        ingest=f"{metrics['timings']['ingest_s']:.2f}",
    )
    return row, metrics


def _ratio(a: float, b: float) -> float:
    return round(a / b, 2) if b > 0 else float("inf")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-dir", default=".trace_cache")
    parser.add_argument("--out", default="runs/bench", help="scratch directory for run outputs")
    parser.add_argument("--json", default="BENCH_pipeline.json", help="benchmark report path")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--n-models", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--faults", default=None, help="optional fault spec for all runs")
    args = parser.parse_args(argv)

    corpus = Path(args.trace_dir)
    n_files = len(sorted(corpus.glob("*.pkl")))
    if n_files == 0:
        print(f"no trace files under {corpus}", file=sys.stderr)
        return 2

    out_root = Path(args.out)
    cache_a = out_root / "cache_serial"
    cache_b = out_root / "cache_parallel"
    for cache in (cache_a, cache_b):
        shutil.rmtree(cache, ignore_errors=True)

    plan = [
        ("cold_serial", 1, cache_a),
        ("warm_serial", 1, cache_a),
        ("cold_parallel", args.workers, cache_b),
        ("warm_parallel", args.workers, cache_b),
    ]
    runs: dict[str, dict] = {}
    stable: dict[str, dict] = {}
    try:
        for name, workers, cache in plan:
            runs[name], metrics = _one_run(
                name, args, workers=workers, cache_dir=cache, out_root=out_root
            )
            stable[name] = _stable_view(metrics)
    except ReproError as exc:
        print(f"benchmark failed: [{exc.code}] {exc}", file=sys.stderr)
        return 2

    baseline = stable["cold_serial"]
    consistent = all(view == baseline for view in stable.values())

    doc = {
        "version": BENCH_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "corpus": str(corpus),
        "n_files": n_files,
        "config": {
            "workers": args.workers,
            "epochs": args.epochs,
            "n_models": args.n_models,
            "seed": args.seed,
            "faults": args.faults,
        },
        "runs": runs,
        "speedups": {
            "warm_vs_cold_serial": _ratio(
                runs["cold_serial"]["elapsed_s"], runs["warm_serial"]["elapsed_s"]
            ),
            "warm_vs_cold_serial_ingest": _ratio(
                runs["cold_serial"]["timings"]["ingest_s"],
                runs["warm_serial"]["timings"]["ingest_s"],
            ),
            "parallel_vs_serial_cold": _ratio(
                runs["cold_serial"]["elapsed_s"], runs["cold_parallel"]["elapsed_s"]
            ),
            "warm_parallel_vs_cold_serial": _ratio(
                runs["cold_serial"]["elapsed_s"], runs["warm_parallel"]["elapsed_s"]
            ),
        },
        "metrics_consistent": consistent,
    }
    Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")

    width = max(len(name) for name, _, _ in plan)
    print(f"{'run':<{width}}  workers  elapsed_s  ingest_s  cache_hits")
    for name, _, _ in plan:
        row = runs[name]
        hits = row["cache"]["hits"] if row["cache"] else 0
        print(
            f"{name:<{width}}  {row['workers']:>7}  {row['elapsed_s']:>9.2f}"
            f"  {row['timings']['ingest_s']:>8.2f}  {hits:>10}"
        )
    print(f"speedups: {json.dumps(doc['speedups'])}")
    if not consistent:
        print("metrics DIVERGED between runs -- cache/parallel bug", file=sys.stderr)
        return 1
    print(f"metrics consistent across all runs; report -> {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
