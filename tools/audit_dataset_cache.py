#!/usr/bin/env python3
"""Audit a dataset-cache root: verify every entry's manifest, shard CRCs,
sizes, and schema versions, and report orphaned shards / leftover temp
directories that an interrupted publish might have stranded.

Usage::

    PYTHONPATH=src python tools/audit_dataset_cache.py --cache-dir DIR
        [--out audit_dataset_cache.json] [--quiet]

Exit status is 0 when every entry is internally consistent and no strays
were found, 1 when the audit found problems worth a look (torn manifests,
CRC mismatches, orphaned files, stale schemas, abandoned ``.tmp-*`` staging
directories), 2 on operator error.  The audit never deletes anything —
damaged entries are self-healing at read time (the cache invalidates and
falls back to cold assembly); this tool exists to see the damage before a
run does.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.features.dataset_cache import (  # noqa: E402
    DATASET_CACHE_VERSION,
    MANIFEST_NAME,
    entry_problems,
)


def audit(cache_root: Path) -> dict:
    entries: dict[str, dict] = {}
    strays: list[str] = []

    # abandoned atomic-publish staging directories (crash between mkdir and
    # os.replace); harmless but worth sweeping
    for child in sorted(cache_root.iterdir()):
        if child.name.startswith(".tmp-"):
            strays.append(child.name)
        elif child.name == "sweeps" and child.is_dir():
            continue  # per-corpus stat+hash memos, not entries
        elif child.is_dir() and len(child.name) == 2:
            for stray in sorted(child.iterdir()):
                if not stray.is_dir():
                    strays.append(f"{child.name}/{stray.name}")
        else:
            strays.append(child.name)

    for manifest in sorted(cache_root.glob("??/*/" + MANIFEST_NAME)):
        entry = manifest.parent
        problems = entry_problems(entry)
        doc: dict = {"problems": problems}
        try:
            parsed = json.loads(manifest.read_text())
            doc["traces"] = len(parsed.get("traces", []))
            doc["samples"] = (parsed.get("shards", {}).get("X.npy", {}).get("shape") or [None])[0]
            doc["bytes"] = sum(
                s.get("bytes", 0) for s in parsed.get("shards", {}).values()
                if isinstance(s, dict)
            )
            doc["created"] = parsed.get("created")
        except (OSError, ValueError):
            pass  # already reported by entry_problems
        entries[entry.name] = doc
    # entry directories missing their manifest entirely never match the glob
    # above — sweep for them separately
    for shard_dir in sorted(cache_root.glob("??/*/")):
        if shard_dir.name not in entries and shard_dir.is_dir():
            entries[shard_dir.name] = {"problems": ["manifest_missing"]}

    damaged = {name: doc for name, doc in entries.items() if doc["problems"]}
    return {
        "version": 1,
        "dataset_cache_version": DATASET_CACHE_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "cache_dir": str(cache_root),
        "entries": len(entries),
        "healthy": len(entries) - len(damaged),
        "damaged": damaged,
        "strays": strays,
        "total_bytes": sum(doc.get("bytes", 0) for doc in entries.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", required=True, help="dataset-cache root")
    parser.add_argument("--out", default="audit_dataset_cache.json")
    parser.add_argument("--quiet", action="store_true", help="suppress the table")
    args = parser.parse_args(argv)

    cache_root = Path(args.cache_dir)
    if not cache_root.is_dir():
        print(f"not a directory: {cache_root}", file=sys.stderr)
        return 2

    report = audit(cache_root)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    if not args.quiet:
        print(
            f"{report['healthy']}/{report['entries']} entries healthy, "
            f"{report['total_bytes']} shard bytes, {len(report['strays'])} strays"
        )
        for name, doc in report["damaged"].items():
            print(f"  DAMAGED {name[:16]}…: {', '.join(doc['problems'])}")
        for stray in report["strays"]:
            print(f"  STRAY {stray}")
        print(f"report written to {args.out}")

    return 1 if (report["damaged"] or report["strays"]) else 0


if __name__ == "__main__":
    sys.exit(main())
