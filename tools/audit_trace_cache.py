#!/usr/bin/env python3
"""Audit a trace-cache corpus: per-class file counts, decode status, damage
statistics, and a machine-readable JSON report.

Usage::

    PYTHONPATH=src python tools/audit_trace_cache.py [--trace-dir .trace_cache]
        [--out audit_trace_cache.json] [--min-class-traces 4] [--quiet]

Exit status is 0 when every file decodes and every class meets the
representation floor, 1 when the audit found problems worth a look (decode
failures or underrepresented classes), 2 on operator error.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.errors import TraceDecodeError  # noqa: E402
from repro.sim.trace import read_trace  # noqa: E402


def _class_key(trace) -> str:
    if trace.is_attack:
        return trace.attack_class or trace.program
    return f"benign:{trace.program}"


def audit(trace_dir: Path, decode_timeout_s: float) -> dict:
    files = sorted(trace_dir.glob("**/*.pkl"))
    classes: dict[str, dict] = {}
    failures: list[dict] = []
    degraded = 0
    nan_fracs: list[float] = []

    for path in files:
        deadline = time.monotonic() + decode_timeout_s
        try:
            trace, report = read_trace(path, deadline=deadline)
        except TraceDecodeError as exc:
            failures.append(
                {"path": path.name, "code": exc.code, "error": type(exc).__name__,
                 "message": str(exc)}
            )
            continue
        except OSError as exc:
            failures.append(
                {"path": path.name, "code": "io_error", "error": type(exc).__name__,
                 "message": str(exc)}
            )
            continue

        rows = np.asarray(trace.rows, dtype=np.float64)
        nan_frac = float(np.mean(~np.isfinite(rows))) if rows.size else 1.0
        nan_fracs.append(nan_frac)
        if report.degraded:
            degraded += 1

        cell = classes.setdefault(
            _class_key(trace),
            {
                "kind": "attack" if trace.is_attack else "benign",
                "files": 0,
                "intervals": 0,
                "interval_lengths": set(),
                "nan_fracs": [],
                "degraded": 0,
            },
        )
        cell["files"] += 1
        cell["intervals"] += trace.n_intervals
        cell["interval_lengths"].add(trace.interval)
        cell["nan_fracs"].append(nan_frac)
        cell["degraded"] += int(report.degraded)

    for cell in classes.values():
        fracs = cell.pop("nan_fracs")
        cell["interval_lengths"] = sorted(cell["interval_lengths"])
        cell["mean_nan_frac"] = round(float(np.mean(fracs)), 4) if fracs else None

    return {
        "version": 1,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "trace_dir": str(trace_dir),
        "files": len(files),
        "decoded": len(files) - len(failures),
        "decode_failures": failures,
        "degraded_decodes": degraded,
        "mean_nan_frac": round(float(np.mean(nan_fracs)), 4) if nan_fracs else None,
        "classes": {key: classes[key] for key in sorted(classes)},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-dir", default=".trace_cache")
    parser.add_argument("--out", default="audit_trace_cache.json")
    parser.add_argument("--decode-timeout", type=float, default=30.0, metavar="SECONDS")
    parser.add_argument(
        "--min-class-traces",
        type=int,
        default=4,
        help="flag classes with fewer traces than this as underrepresented",
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the table")
    args = parser.parse_args(argv)

    trace_dir = Path(args.trace_dir)
    if not trace_dir.is_dir():
        print(f"not a directory: {trace_dir}", file=sys.stderr)
        return 2

    report = audit(trace_dir, args.decode_timeout)
    underrepresented = [
        key
        for key, cell in report["classes"].items()
        if cell["files"] < args.min_class_traces
    ]
    report["underrepresented"] = underrepresented
    report["min_class_traces"] = args.min_class_traces

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    if not args.quiet:
        print(f"{report['decoded']}/{report['files']} files decoded "
              f"({report['degraded_decodes']} degraded, "
              f"mean NaN fraction {report['mean_nan_frac']})")
        width = max((len(k) for k in report["classes"]), default=10)
        for key, cell in report["classes"].items():
            flag = "  <-- underrepresented" if key in underrepresented else ""
            print(f"  {key:<{width}}  {cell['kind']:<6} files={cell['files']:<3} "
                  f"intervals={cell['intervals']:<4} "
                  f"nan={cell['mean_nan_frac']}{flag}")
        for failure in report["decode_failures"]:
            print(f"  DECODE FAILURE {failure['path']}: "
                  f"[{failure['code']}] {failure['message']}")
        print(f"report written to {args.out}")

    return 1 if (report["decode_failures"] or underrepresented) else 0


if __name__ == "__main__":
    sys.exit(main())
