#!/usr/bin/env python3
"""Load-generator + chaos harness for the ``repro.serve`` scoring daemon.

Spawns the daemon as a real subprocess (the way a supervisor would), waits
for ``/readyz``, then drives it through phases:

1. **load** — N concurrent NDJSON clients send trace payloads drawn from the
   corpus and record per-request latency.
2. **burst** — all clients fire simultaneously against the bounded queue to
   exercise backpressure; shed (503) responses are counted, not errors.
3. **chaos** (``--chaos``) — injected corrupt payloads, malformed JSON,
   truncated writes, stalled clients, a corrupt ``CURRENT`` artifact pointer
   followed by a good hot swap — all while normal load continues.

Then SIGTERM, drain, and the hard assertions: the daemon exits 0 (zero
crashes), every well-formed request got a structured response, every
injected-fault request got a *structured error* (not a hang or a dropped
daemon), and probes answered throughout.  Results go to ``BENCH_serve.json``
(p50/p99 latency, throughput, shed/error counts, daemon counters).

Usage::

    PYTHONPATH=src python tools/bench_serve.py [--artifact-root runs/artifact]
        [--trace-dir tests/fixtures/golden] [--clients 16] [--requests 40]
        [--chaos] [--quick] [--json BENCH_serve.json]

The artifact is built from ``--trace-dir`` automatically when the store is
empty.  Exit status: 0 all assertions hold, 1 an assertion failed, 2
operator error.
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.model import ArtifactStore  # noqa: E402
from repro.telemetry import get_logger, log_event  # noqa: E402

logger = get_logger("repro.tools.bench_serve")

BENCH_VERSION = 1


# ---------------------------------------------------------------------------
# setup
# ---------------------------------------------------------------------------


def ensure_artifact(root: Path, trace_dir: Path, out_dir: Path) -> str:
    """Build an artifact from the corpus when the store is empty."""
    store = ArtifactStore(root)
    current = store.current()
    if current is not None:
        return current
    from repro.pipeline import PipelineConfig, run_pipeline

    log_event(logger, "bench_serve.build_artifact", trace_dir=str(trace_dir))
    metrics = run_pipeline(
        PipelineConfig(
            trace_dir=str(trace_dir),
            out_dir=str(out_dir / "train"),
            epochs=8,
            n_models=2,
            theta=5.0,
            artifact_root=str(root),
        )
    )
    return metrics["artifact"]["version"]


def load_payloads(trace_dir: Path) -> list[str]:
    payloads = [
        base64.b64encode(path.read_bytes()).decode()
        for path in sorted(trace_dir.glob("**/*.pkl"))
    ]
    if not payloads:
        raise SystemExit(f"no trace files under {trace_dir}")
    return payloads


def spawn_daemon(args, artifact_root: Path, quarantine: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [
        sys.executable,
        "-m",
        "repro.serve",
        "--artifact-root",
        str(artifact_root),
        "--port",
        "0",
        "--max-queue",
        str(args.max_queue),
        "--max-batch",
        str(args.max_batch),
        "--batch-window-ms",
        "2",
        "--request-timeout",
        "15",
        "--idle-timeout",
        "3",
        "--reload-poll",
        "0.2",
        "--quarantine",
        str(quarantine),
    ]
    proc = subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    try:
        port = int(json.loads(line)["listening"]["port"])
    except (ValueError, KeyError, TypeError):
        proc.kill()
        raise SystemExit(f"daemon did not announce a port (got {line!r})")
    return proc, port


# ---------------------------------------------------------------------------
# clients
# ---------------------------------------------------------------------------


async def probe(port: int, target: str) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n".encode())
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(1 << 16), timeout=5)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, json.loads(body) if body else {}


async def wait_ready(port: int, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            status, _ = await probe(port, "/readyz")
            if status == 200:
                return
        except OSError:
            pass
        await asyncio.sleep(0.1)
    raise SystemExit("daemon never became ready")


class Tally:
    """Shared result sink across all client tasks."""

    def __init__(self):
        self.latencies_ms: list[float] = []
        self.by_status: dict[int, int] = {}
        self.unanswered = 0
        self.fault_structured = 0
        self.fault_unstructured = 0

    def record(self, response: dict | None, latency_ms: float, *, fault: bool = False) -> None:
        if response is None:
            self.unanswered += 1
            if fault:
                self.fault_unstructured += 1
            return
        status = int(response.get("status", -1))
        self.by_status[status] = self.by_status.get(status, 0) + 1
        if fault:
            # a structured answer to an injected fault is exactly what we want
            if response.get("ok") is False and "error" in response:
                self.fault_structured += 1
            else:
                self.fault_unstructured += 1
        elif response.get("ok"):
            self.latencies_ms.append(latency_ms)


async def send_one(reader, writer, doc: dict, *, timeout: float = 30.0) -> dict | None:
    writer.write(json.dumps(doc).encode() + b"\n")
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=timeout)
    return json.loads(line) if line.strip() else None


async def load_client(port: int, payloads: list[str], n: int, tag: str, tally: Tally) -> None:
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    except OSError:
        tally.unanswered += n
        return
    try:
        for i in range(n):
            doc = {"id": f"{tag}-{i}", "payload_b64": payloads[i % len(payloads)]}
            t0 = time.monotonic()
            try:
                response = await send_one(reader, writer, doc)
            except (OSError, asyncio.TimeoutError, ValueError):
                tally.record(None, 0.0)
                return
            tally.record(response, (time.monotonic() - t0) * 1e3)
    finally:
        writer.close()


async def chaos_corrupt_client(port: int, payloads: list[str], n: int, tag: str, tally: Tally):
    """Corrupt payloads: truncated codec bytes, garbage base64, bad fields.
    Every one must come back as a structured error."""
    blob = base64.b64decode(payloads[0])
    variants = [
        {"payload_b64": base64.b64encode(blob[: len(blob) // 3]).decode()},  # truncated
        {"payload_b64": base64.b64encode(os.urandom(256)).decode()},  # garbage bytes
        {"payload_b64": "!!!not-base64!!!"},  # invalid encoding
        {"rows": [[1.0, 2.0], [3.0]]},  # ragged matrix
        {"rows": []},  # empty
        {},  # no payload at all
    ]
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    except OSError:
        tally.fault_unstructured += n
        return
    try:
        for i in range(n):
            doc = {"id": f"{tag}-{i}", **variants[i % len(variants)]}
            try:
                response = await send_one(reader, writer, doc)
            except (OSError, asyncio.TimeoutError, ValueError):
                tally.record(None, 0.0, fault=True)
                return
            tally.record(response, 0.0, fault=True)
    finally:
        writer.close()


async def chaos_malformed_lines(port: int, n: int, tally: Tally):
    """Non-JSON lines on the scoring port; expect structured 400s."""
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    except OSError:
        tally.fault_unstructured += n
        return
    try:
        for i in range(n):
            writer.write(b"}{ totally not json %d\n" % i)
            await writer.drain()
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=10)
                tally.record(json.loads(line) if line.strip() else None, 0.0, fault=True)
            except (OSError, asyncio.TimeoutError, ValueError):
                tally.record(None, 0.0, fault=True)
                return
    finally:
        writer.close()


async def chaos_truncated_write(port: int, payloads: list[str]):
    """Send half a request line and slam the connection shut."""
    try:
        _, writer = await asyncio.open_connection("127.0.0.1", port)
    except OSError:
        return
    line = json.dumps({"id": "trunc", "payload_b64": payloads[0]})
    writer.write(line[: len(line) // 2].encode())  # no newline, half the JSON
    await writer.drain()
    writer.close()


async def chaos_stalled_client(port: int, hold_s: float):
    """Open a connection, send a partial line, and stall until the daemon's
    idle timeout disconnects us."""
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    except OSError:
        return
    writer.write(b'{"id": "stall", ')
    await writer.drain()
    try:  # the daemon should hang up on us, not the other way around
        await asyncio.wait_for(reader.read(1), timeout=hold_s)
    except asyncio.TimeoutError:
        pass
    finally:
        writer.close()


async def chaos_artifact_swaps(artifact_root: Path, port: int, results: dict):
    """Mid-run: first point CURRENT at a version that does not verify (the
    daemon must keep serving the last good artifact), then publish a real
    new version (the daemon must hot-swap to it)."""
    store = ArtifactStore(artifact_root)
    good = store.current()
    # -- corrupt swap: pointer to a version directory that is not there
    (artifact_root / "CURRENT").write_text("v9999-deadbeef\n")
    await asyncio.sleep(1.0)
    status, ready = await probe(port, "/readyz")
    results["ready_during_bad_swap"] = status == 200
    results["serving_during_bad_swap"] = ready.get("artifact")
    # -- good swap: republish the same model content as a new version
    loaded = store.load(good)
    published = store.publish(
        loaded.models, loaded.normalizer, loaded.scales, meta={"bench": "hot-swap"}
    )
    deadline = time.monotonic() + 10
    swapped = False
    while time.monotonic() < deadline:
        await asyncio.sleep(0.25)
        status, ready = await probe(port, "/readyz")
        if status == 200 and ready.get("artifact") == published.version:
            swapped = True
            break
    results["good_swap_version"] = published.version
    results["hot_swap_observed"] = swapped


# ---------------------------------------------------------------------------
# phases
# ---------------------------------------------------------------------------


async def run_bench(args, port: int, payloads: list[str], artifact_root: Path) -> dict:
    tally = Tally()
    chaos_results: dict = {}

    t0 = time.monotonic()
    # phase 1: steady load
    await asyncio.gather(
        *(
            load_client(port, payloads, args.requests, f"load{c}", tally)
            for c in range(args.clients)
        )
    )
    load_elapsed = time.monotonic() - t0

    # phase 2: burst against the bounded queue — enough simultaneous
    # connections to exceed max_queue, so real shedding is exercised
    burst_t0 = time.monotonic()
    await asyncio.gather(
        *(
            load_client(port, payloads, max(2, args.requests // 4), f"burst{c}", tally)
            for c in range(max(args.clients * 4, args.max_queue * 2))
        )
    )
    burst_elapsed = time.monotonic() - burst_t0

    if args.chaos:
        n_faults = max(6, args.requests // 2)
        chaos_tasks = [
            chaos_corrupt_client(port, payloads, n_faults, "corrupt", tally),
            chaos_malformed_lines(port, n_faults, tally),
            chaos_truncated_write(port, payloads),
            chaos_truncated_write(port, payloads),
            chaos_stalled_client(port, hold_s=8.0),
            chaos_artifact_swaps(artifact_root, port, chaos_results),
            # normal traffic must keep flowing through all of it
            load_client(port, payloads, args.requests, "during-chaos", tally),
        ]
        await asyncio.gather(*chaos_tasks)

    status, metrics = await probe(port, "/metricsz")
    chaos_results["metricsz_status"] = status
    health, _ = await probe(port, "/healthz")
    chaos_results["healthz_status"] = health

    lat = sorted(tally.latencies_ms)

    def pct(p: float) -> float:
        return round(lat[min(len(lat) - 1, int(p * len(lat)))], 3) if lat else float("nan")

    n_load = args.clients * args.requests
    return {
        "latency_ms": {
            "p50": pct(0.50),
            "p90": pct(0.90),
            "p99": pct(0.99),
            "mean": round(sum(lat) / len(lat), 3) if lat else float("nan"),
            "count": len(lat),
        },
        "throughput_rps": round(n_load / load_elapsed, 1) if load_elapsed else 0.0,
        "load_elapsed_s": round(load_elapsed, 3),
        "burst_elapsed_s": round(burst_elapsed, 3),
        "responses_by_status": {str(k): v for k, v in sorted(tally.by_status.items())},
        "shed": tally.by_status.get(503, 0),
        "quarantined_responses": tally.by_status.get(422, 0),
        "unanswered": tally.unanswered,
        "faults": {
            "structured": tally.fault_structured,
            "unstructured": tally.fault_unstructured,
        },
        "chaos": chaos_results,
        "daemon_metrics": metrics,
    }


# ---------------------------------------------------------------------------
# main
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifact-root", default="runs/serve-bench/artifact")
    parser.add_argument("--trace-dir", default="tests/fixtures/golden")
    parser.add_argument("--out", default="runs/serve-bench")
    parser.add_argument("--json", default="BENCH_serve.json")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--requests", type=int, default=40, help="requests per client")
    parser.add_argument("--max-queue", type=int, default=16)
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--chaos", action="store_true", help="inject faults while serving")
    parser.add_argument("--quick", action="store_true", help="shrink load for a CI smoke run")
    parser.add_argument(
        "--check", action="store_true", help="run assertions only; do not write the report"
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.clients = min(args.clients, 6)
        args.requests = min(args.requests, 12)
        args.max_queue = min(args.max_queue, 16)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    artifact_root = Path(args.artifact_root)
    trace_dir = Path(args.trace_dir)
    try:
        version = ensure_artifact(artifact_root, trace_dir, out_dir)
    except ReproError as exc:
        print(f"cannot build artifact: [{exc.code}] {exc}", file=sys.stderr)
        return 2
    payloads = load_payloads(trace_dir)

    proc, port = spawn_daemon(args, artifact_root, out_dir / "serve_quarantine.json")
    try:
        asyncio.run(wait_ready(port))
        results = asyncio.run(run_bench(args, port, payloads, artifact_root))
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
    stopped_line = proc.stdout.read().strip()
    daemon_final = {}
    for line in stopped_line.splitlines():
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if doc.get("stopped"):
            daemon_final = doc.get("counters", {})

    failures: list[str] = []
    if proc.returncode != 0:
        failures.append(f"daemon exited {proc.returncode}, expected 0")
    if not daemon_final:
        failures.append("daemon did not report a clean drain summary on stdout")
    if results["unanswered"]:
        failures.append(f"{results['unanswered']} well-formed requests went unanswered")
    if args.chaos:
        if results["faults"]["unstructured"]:
            failures.append(
                f"{results['faults']['unstructured']} injected faults were not "
                "answered with structured errors"
            )
        if results["faults"]["structured"] == 0:
            failures.append("chaos mode ran but no injected fault was exercised")
        if not results["chaos"].get("ready_during_bad_swap"):
            failures.append("daemon lost readiness during the corrupt artifact swap")
        if not results["chaos"].get("hot_swap_observed"):
            failures.append("daemon never picked up the good artifact hot swap")
        if daemon_final and daemon_final.get("reload_failures", 0) < 1:
            failures.append("corrupt artifact swap was never refused (reload_failures == 0)")
    if results["chaos"].get("healthz_status") != 200:
        failures.append("healthz probe failed at end of run")
    ok_count = results["responses_by_status"].get("200", 0)
    if ok_count == 0:
        failures.append("no request was ever scored successfully")

    doc = {
        "version": BENCH_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "artifact": version,
        "corpus": str(trace_dir),
        "config": {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "max_queue": args.max_queue,
            "max_batch": args.max_batch,
            "chaos": args.chaos,
            "quick": args.quick,
        },
        "results": results,
        "daemon_exit_code": proc.returncode,
        "daemon_counters": daemon_final,
        "assertions_failed": failures,
        "crashes": 0 if proc.returncode == 0 else 1,
    }
    if not args.check:
        Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")

    lat = results["latency_ms"]
    print(
        f"served {ok_count} ok / shed {results['shed']} / "
        f"quarantined {results['quarantined_responses']}  "
        f"p50 {lat['p50']} ms  p99 {lat['p99']} ms  "
        f"{results['throughput_rps']} req/s"
    )
    if args.chaos:
        print(
            f"chaos: {results['faults']['structured']} faults answered structurally, "
            f"hot_swap={results['chaos'].get('hot_swap_observed')}, "
            f"reload_failures={daemon_final.get('reload_failures')}"
        )
    if failures:
        for failure in failures:
            print(f"ASSERTION FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"all serve assertions hold; daemon exited cleanly"
          + ("" if args.check else f"; report -> {args.json}"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
