#!/usr/bin/env python3
"""Gate a ``metrics.json`` on per-family detection quality.

Reads the per-family breakdown the pipeline writes and asserts it against
pinned tolerances: minimum family coverage, minimum per-attack-family
accuracy, and maximum per-benign-family false-positive rate.  CI's
``gen-smoke`` job runs this against a freshly generated corpus so a
detector or generator regression that sinks one family — while the overall
scalar still looks fine — fails loudly, per family, by name.

Usage::

    PYTHONPATH=src python tools/check_family_metrics.py runs/gen/metrics.json
        [--min-families 6] [--min-attack-accuracy 0.8] [--max-benign-fpr 0.4]

Exit status: 0 when every family is within tolerance, 1 with violations
listed on stderr, 2 on operator error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(metrics: dict, args) -> list[str]:
    per_family = metrics.get("metrics", {}).get("per_family")
    if not isinstance(per_family, dict) or not per_family:
        return ["metrics.json has no metrics.per_family section (pipeline too old?)"]
    violations = []
    attacks = {k: v for k, v in per_family.items() if v["kind"] == "attack"}
    if len(attacks) < args.min_families:
        violations.append(
            f"only {len(attacks)} attack families evaluated, need >= {args.min_families}"
        )
    for family in sorted(per_family):
        doc = per_family[family]
        if doc["tested"] < args.min_tested:
            violations.append(
                f"{family}: only {doc['tested']} test traces, need >= {args.min_tested}"
            )
        if doc["kind"] == "attack" and doc["accuracy"] < args.min_attack_accuracy:
            violations.append(
                f"{family}: attack accuracy {doc['accuracy']:.3f} "
                f"< {args.min_attack_accuracy}"
            )
        if doc["kind"] == "benign" and doc["false_positive_rate"] > args.max_benign_fpr:
            violations.append(
                f"{family}: benign FPR {doc['false_positive_rate']:.3f} "
                f"> {args.max_benign_fpr}"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", help="path to a pipeline metrics.json")
    parser.add_argument("--min-families", type=int, default=6)
    parser.add_argument("--min-attack-accuracy", type=float, default=0.8)
    parser.add_argument("--max-benign-fpr", type=float, default=0.4)
    parser.add_argument("--min-tested", type=int, default=1)
    args = parser.parse_args(argv)

    try:
        metrics = json.loads(Path(args.metrics).read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read {args.metrics}: {exc}", file=sys.stderr)
        return 2

    per_family = metrics.get("metrics", {}).get("per_family", {})
    width = max((len(k) for k in per_family), default=10)
    for family in sorted(per_family):
        doc = per_family[family]
        rate = doc.get("false_positive_rate", doc.get("miss_rate", 0.0))
        print(
            f"{family:<{width}}  {doc['kind']:<6}  tested={doc['tested']:<4d}"
            f"  accuracy={doc['accuracy']:.3f}  err_rate={rate:.3f}"
            f"  margin_p50={doc['margins']['p50']:+.3f}"
        )

    violations = check(metrics, args)
    if violations:
        for line in violations:
            print(f"TOLERANCE VIOLATION: {line}", file=sys.stderr)
        return 1
    print(
        f"all {len(per_family)} families within tolerances "
        f"(attack accuracy >= {args.min_attack_accuracy}, "
        f"benign FPR <= {args.max_benign_fpr})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
