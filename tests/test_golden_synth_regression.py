"""Golden synthetic regression: the checked-in ``repro.gen`` corpus must
regenerate byte-for-byte, and the pipeline over it must keep reproducing the
recorded per-family metrics exactly.

The byte-identity half pins the generator's stream contract (GEN_VERSION):
any change to the synthesis math, family profiles, codec, or shard layout
shows up as a digest mismatch.  The metrics half pins the whole
generate -> ingest -> featurize -> train -> per-family-eval path.  If a
change is *intentional*, regenerate with ``PYTHONPATH=src python
tests/fixtures/make_golden_synth.py`` and commit the diff.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from pathlib import Path

import pytest

from repro.gen import MANIFEST_NAME, generate_corpus
from repro.pipeline import PipelineConfig, run_pipeline

FIXTURES = Path(__file__).resolve().parent / "fixtures"
GOLDEN_SYNTH = FIXTURES / "golden_synth"
CORPUS = GOLDEN_SYNTH / "corpus"

_spec = importlib.util.spec_from_file_location(
    "make_golden_synth", FIXTURES / "make_golden_synth.py"
)
make_golden_synth = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(make_golden_synth)


@pytest.fixture(scope="module")
def expected() -> dict:
    path = GOLDEN_SYNTH / "expected_metrics.json"
    if not path.exists():
        pytest.skip("golden synthetic fixtures not generated in this checkout")
    return json.loads(path.read_text())


def _tree_digest(root: Path) -> dict[str, str]:
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _actual(out_dir, **overrides) -> dict:
    config = PipelineConfig(
        trace_dir=str(CORPUS),
        out_dir=str(out_dir),
        **{**make_golden_synth.GOLDEN_CONFIG, **overrides},
    )
    metrics = run_pipeline(config)
    return json.loads(json.dumps({k: metrics[k] for k in make_golden_synth.STABLE_KEYS}))


def test_corpus_regenerates_byte_identically(tmp_path, expected):
    report = generate_corpus(tmp_path / "regen", **make_golden_synth.GEN_CONFIG)
    assert report.corpus_digest == expected["corpus_digest"]
    assert _tree_digest(tmp_path / "regen") == _tree_digest(CORPUS)


def test_manifest_digest_matches_expected(expected):
    manifest = json.loads((CORPUS / MANIFEST_NAME).read_text())
    assert manifest["corpus_digest"] == expected["corpus_digest"]
    assert sum(f["count"] for f in manifest["families"].values()) == len(
        list(CORPUS.rglob("*.pkl"))
    )


def test_pipeline_reproduces_per_family_metrics(tmp_path, expected):
    actual = _actual(tmp_path / "run")
    assert actual == {k: expected[k] for k in make_golden_synth.STABLE_KEYS}
    per_family = actual["metrics"]["per_family"]
    assert len([k for k, v in per_family.items() if v["kind"] == "attack"]) >= 6


def test_per_family_metrics_unchanged_by_workers(tmp_path, expected):
    actual = _actual(tmp_path / "run", workers=4)
    assert actual == {k: expected[k] for k in make_golden_synth.STABLE_KEYS}
