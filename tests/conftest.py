"""Shared fixtures: paths into the real trace-cache corpus and synthetic
trace factories used by the codec / ingest / pipeline tests."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.sim.trace import Trace, encode_trace

REPO_ROOT = Path(__file__).resolve().parent.parent
TRACE_CACHE = REPO_ROOT / ".trace_cache"


def corpus_paths(limit: int | None = None) -> list[Path]:
    paths = sorted(TRACE_CACHE.glob("*.pkl"))
    return paths[:limit] if limit else paths


@pytest.fixture(scope="session")
def real_trace_paths() -> list[Path]:
    paths = corpus_paths()
    if not paths:
        pytest.skip("no .trace_cache corpus in this checkout")
    return paths


def make_trace(
    program: str = "unit_prog",
    label: int = -1,
    attack_class: str | None = None,
    interval: int = 10000,
    n_intervals: int = 4,
    n_features: int = 12,
    seed: int = 0,
) -> Trace:
    rng = np.random.default_rng(seed)
    rows = rng.normal(size=(n_intervals, n_features)) * 100.0
    return Trace(
        program=program,
        label=label,
        attack_class=attack_class,
        interval=interval,
        rows=rows,
        stat_names=[f"stat_{i}" for i in range(n_features)],
        meta={"seed": seed},
    )


def write_synthetic_corpus(root: Path, n_benign: int = 4, n_attack: int = 4) -> list[Path]:
    """Write a tiny, cleanly-encoded corpus; benign and attack rows are drawn
    from well-separated distributions so a perceptron can tell them apart."""
    root.mkdir(parents=True, exist_ok=True)
    paths = []
    for i in range(n_benign):
        rng = np.random.default_rng(100 + i)
        # two benign programs so the per-class stratified split can place
        # benign traces on both sides of the train/test boundary
        trace = make_trace(program=f"benign_{i % 2}", label=-1, seed=100 + i)
        trace.rows = rng.normal(loc=0.0, scale=1.0, size=trace.rows.shape)
        path = root / f"benign_{i}.pkl"
        path.write_bytes(encode_trace(trace))
        paths.append(path)
    for i in range(n_attack):
        rng = np.random.default_rng(200 + i)
        trace = make_trace(
            program=f"attack_{i}", label=1, attack_class="synthetic_attack", seed=200 + i
        )
        trace.rows = rng.normal(loc=6.0, scale=1.0, size=trace.rows.shape)
        path = root / f"attack_{i}.pkl"
        path.write_bytes(encode_trace(trace))
        paths.append(path)
    return paths
