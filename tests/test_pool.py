"""The worker pool must be a pure wall-clock optimization: pooled runs
produce the same results, in the same order, with the same quarantine
manifest as the serial loader -- fault injection and caching included."""

from __future__ import annotations

from conftest import write_synthetic_corpus
from repro.cache import FeatureCache
from repro.faults import FaultPlan
from repro.ingest import RetryPolicy, load_corpus_pooled

#: keep injected-I/O retries fast; backoff delays are irrelevant to semantics
FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002, jitter=0.0)


def _summarize(results, quarantine):
    loaded = [(r.path, r.trace.program, r.trace.label, r.report.mode, tuple(r.report.notes)) for r in results]
    quarantined = [(e.path, e.code, e.error) for e in quarantine.entries]
    return loaded, quarantined


def test_pooled_matches_serial_clean(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=5, n_attack=5)
    serial = load_corpus_pooled(corpus, workers=1)
    pooled = load_corpus_pooled(corpus, workers=4)
    assert _summarize(*serial) == _summarize(*pooled)
    for a, b in zip(serial[0], pooled[0]):
        assert a.trace == b.trace


def test_pooled_matches_serial_under_faults(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=6, n_attack=6)
    faults = FaultPlan(io_rate=0.4, corrupt_rate=0.4, seed=3)
    serial = load_corpus_pooled(corpus, workers=1, faults=faults, retry_policy=FAST_RETRY)
    pooled = load_corpus_pooled(corpus, workers=4, faults=faults, retry_policy=FAST_RETRY)
    assert _summarize(*serial) == _summarize(*pooled)
    # the grid is only interesting if the faults actually bit something
    assert len(serial[1]) > 0 or any(r.report.degraded for r in serial[0])


def test_worker_count_does_not_change_fault_decisions(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=4, n_attack=4)
    faults = FaultPlan(io_rate=0.5, corrupt_rate=0.3, seed=9, transient=False)
    outcomes = []
    for workers in (1, 2, 4, 8):
        results, quarantine = load_corpus_pooled(
            corpus, workers=workers, faults=faults, retry_policy=FAST_RETRY
        )
        outcomes.append(_summarize(results, quarantine))
    assert all(o == outcomes[0] for o in outcomes[1:])


def test_pool_shares_cache_across_workers(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=4, n_attack=4)
    cache_root = tmp_path / "cache"
    cold, _ = load_corpus_pooled(corpus, workers=4, cache_root=cache_root)
    assert not any(r.from_cache for r in cold)
    assert len(FeatureCache(cache_root)) == 8
    warm, _ = load_corpus_pooled(corpus, workers=4, cache_root=cache_root)
    assert all(r.from_cache for r in warm)
    for a, b in zip(cold, warm):
        assert a.trace == b.trace
        assert a.report.mode == b.report.mode and a.report.notes == b.report.notes


def test_warm_cache_serial_equals_pooled(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=3, n_attack=3)
    cache_root = tmp_path / "cache"
    load_corpus_pooled(corpus, workers=1, cache_root=cache_root)
    warm_serial = load_corpus_pooled(corpus, workers=1, cache_root=cache_root)
    warm_pooled = load_corpus_pooled(corpus, workers=3, cache_root=cache_root)
    assert _summarize(*warm_serial) == _summarize(*warm_pooled)
    assert all(r.from_cache for r in warm_pooled[0])


def test_empty_corpus(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    results, quarantine = load_corpus_pooled(empty, workers=4)
    assert results == [] and len(quarantine) == 0
