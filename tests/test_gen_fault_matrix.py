"""Fault-matrix coverage for *generated* corpora: across a {0%, 25%} x
{io, corruption} grid over a sharded ``repro.gen`` corpus, ``--workers 4``
must produce the same ``metrics.json`` — including the per-family breakdown
— and the same quarantine manifest as ``--workers 1``.

This extends ``tests/test_fault_matrix.py`` (which pins the hand-built
golden corpus) to the synthetic path: shard subdirectories, generator
payloads through the salvage decoder under corruption, and per-family
metrics must all stay invariant under ingest parallelism.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import IngestError
from repro.faults import FaultPlan
from repro.gen import generate_corpus
from repro.ingest import RetryPolicy
from repro.pipeline import PipelineConfig, run_pipeline

FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002, jitter=0.0)

#: volatile metrics.json fields: wall-clock, never semantics
_VOLATILE = ("created", "elapsed_s", "timings")

GRID = [
    pytest.param(None, id="clean"),
    pytest.param(FaultPlan(io_rate=0.25, seed=23), id="io-25"),
    pytest.param(FaultPlan(corrupt_rate=0.25, seed=23), id="corrupt-25"),
]


@pytest.fixture(scope="module")
def gen_corpus(tmp_path_factory) -> Path:
    out = tmp_path_factory.mktemp("gen_fault") / "corpus"
    generate_corpus(out, families="all", count=24, seed=29)
    return out


def _run(corpus: Path, out_dir: Path, workers: int, faults: FaultPlan | None):
    config = PipelineConfig(
        trace_dir=str(corpus),
        out_dir=str(out_dir),
        epochs=4,
        seed=7,
        n_models=1,
        theta=5.0,
        workers=workers,
        retry_policy=FAST_RETRY,
        faults=faults,
    )
    try:
        run_pipeline(config)
    except IngestError:
        # a grid cell may quarantine the whole corpus; both worker counts
        # must then fail identically, with identical manifests
        pass
    metrics = None
    if (out_dir / "metrics.json").exists():
        metrics = json.loads((out_dir / "metrics.json").read_text())
        for key in _VOLATILE:
            metrics.pop(key, None)
    quarantine = json.loads((out_dir / "quarantine.json").read_text())
    quarantine.pop("created", None)
    return metrics, quarantine


@pytest.mark.parametrize("faults", GRID)
def test_worker_count_is_semantics_free_on_generated_corpus(tmp_path, gen_corpus, faults):
    serial_metrics, serial_quarantine = _run(gen_corpus, tmp_path / "w1", 1, faults)
    pooled_metrics, pooled_quarantine = _run(gen_corpus, tmp_path / "w4", 4, faults)
    assert pooled_quarantine == serial_quarantine
    assert pooled_metrics == serial_metrics
    if faults is None:
        assert serial_metrics["ingest"]["quarantined"] == 0
        assert serial_metrics["metrics"]["families"] >= 6


def test_fault_grid_exercises_per_family_path(tmp_path, gen_corpus):
    """The 25% corruption cell must still produce a per-family breakdown
    (salvage keeps most traces alive) and must actually degrade something."""
    metrics, quarantine = _run(
        gen_corpus, tmp_path / "run", 1, FaultPlan(corrupt_rate=0.25, seed=23)
    )
    assert metrics is not None, "corruption cell unexpectedly quarantined everything"
    touched = metrics["ingest"]["quarantined"] + metrics["ingest"]["degraded"]
    assert touched > 0, "25% corruption grid cell injected nothing; matrix is vacuous"
    assert metrics["metrics"]["per_family"], "per-family metrics missing under faults"
