"""Generator integration tests: corpus layout, worker invariance, profiles,
CLI, and the generated-corpus -> pipeline end-to-end path."""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.errors import GenSpecError
from repro.gen import (
    FAMILY_REGISTRY,
    MANIFEST_NAME,
    FamilySpec,
    allocate_counts,
    generate_corpus,
    load_profiles,
    resolve_families,
    shard_relpath,
)
from repro.gen.__main__ import main as gen_main
from repro.pipeline import PipelineConfig, run_pipeline


def _tree_digest(root: Path) -> dict[str, str]:
    """Relative path -> sha256 for every file under ``root``."""
    return {
        str(p.relative_to(root)): hashlib.sha256(p.read_bytes()).hexdigest()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


@pytest.fixture(scope="module")
def small_corpus(tmp_path_factory) -> tuple[Path, dict]:
    out = tmp_path_factory.mktemp("genc") / "corpus"
    report = generate_corpus(out, families="all", count=36, seed=13)
    return out, report.describe()


class TestCorpusLayout:
    def test_manifest_matches_files(self, small_corpus):
        out, report = small_corpus
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert manifest["corpus_digest"] == report["corpus_digest"]
        assert sum(f["count"] for f in manifest["families"].values()) == 36
        assert len(list(out.rglob("*.pkl"))) == 36

    def test_files_shard_by_payload_hash(self, small_corpus):
        out, _ = small_corpus
        for path in out.rglob("*.pkl"):
            digest = hashlib.sha256(path.read_bytes()).hexdigest()
            assert path.parent.name == f"shard_{digest[:2]}"
            assert path.name.endswith(f"_{digest[:12]}.pkl")
            family, index = path.name.rsplit("_", 2)[0], int(path.name.rsplit("_", 2)[1])
            assert shard_relpath(family, index, digest) == path.relative_to(out)

    def test_every_builtin_family_is_present(self, small_corpus):
        out, report = small_corpus
        assert set(report["families"]) == set(FAMILY_REGISTRY)
        attacks = [n for n, s in FAMILY_REGISTRY.items() if s.is_attack]
        assert len(attacks) >= 6


class TestDeterminism:
    def test_worker_count_is_byte_identical(self, tmp_path, small_corpus):
        baseline_dir, _ = small_corpus
        pooled = tmp_path / "pooled"
        generate_corpus(pooled, families="all", count=36, seed=13, workers=4)
        assert _tree_digest(pooled) == _tree_digest(baseline_dir)

    def test_regeneration_in_place_is_idempotent(self, tmp_path):
        out = tmp_path / "corpus"
        first = generate_corpus(out, families=["spectre_v1"], count=4, seed=3)
        before = _tree_digest(out)
        second = generate_corpus(out, families=["spectre_v1"], count=4, seed=3)
        assert first.corpus_digest == second.corpus_digest
        assert _tree_digest(out) == before

    def test_different_seed_changes_every_payload(self, tmp_path):
        a = generate_corpus(tmp_path / "a", families=["meltdown"], count=3, seed=1)
        b = generate_corpus(tmp_path / "b", families=["meltdown"], count=3, seed=2)
        assert a.corpus_digest != b.corpus_digest
        assert not set(_tree_digest(tmp_path / "a")) & set(
            k for k in _tree_digest(tmp_path / "b") if k.endswith(".pkl")
        )


class TestSelection:
    def test_allocate_counts_spreads_remainder_deterministically(self):
        specs = resolve_families("all")
        counts = allocate_counts(specs, 27)
        assert sum(counts.values()) == 27
        assert max(counts.values()) - min(counts.values()) <= 1
        assert counts == allocate_counts(specs, 27)

    def test_selection_keywords(self):
        assert {s.name for s in resolve_families("attacks")} == {
            n for n, s in FAMILY_REGISTRY.items() if s.is_attack
        }
        assert all(not s.is_attack for s in resolve_families("benign"))
        assert [s.name for s in resolve_families(["meltdown", "benign_stream"])] == [
            "meltdown",
            "benign_stream",
        ]

    def test_unknown_family_raises(self):
        with pytest.raises(GenSpecError):
            resolve_families(["rowhammer"])
        with pytest.raises(GenSpecError):
            allocate_counts(resolve_families("all"), 0)


class TestProfiles:
    def test_profile_overlays_registry(self, tmp_path):
        profile = tmp_path / "prof.json"
        custom = FamilySpec(
            name="rowhammer_like",
            label=1,
            signature={"mem.rowMisses": 9.0, "mem.busUtil": 3.0},
        )
        profile.write_text(json.dumps({"families": [custom.to_dict()]}))
        registry = load_profiles(profile)
        assert "rowhammer_like" in registry and "spectre_v1" in registry
        report = generate_corpus(
            tmp_path / "c", families=["rowhammer_like"], count=2, seed=5, registry=registry
        )
        assert report.families == {"rowhammer_like": 2}

    def test_malformed_profile_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"families": [{"name": "x", "label": 7}]}))
        with pytest.raises(GenSpecError):
            load_profiles(bad)
        with pytest.raises(GenSpecError):
            load_profiles(tmp_path / "missing.json")


class TestEndToEnd:
    def test_pipeline_trains_on_sharded_corpus(self, tmp_path, small_corpus):
        corpus, _ = small_corpus
        metrics = run_pipeline(
            PipelineConfig(
                trace_dir=str(corpus),
                out_dir=str(tmp_path / "run"),
                epochs=6,
                n_models=2,
                seed=7,
            )
        )
        assert metrics["ingest"]["loaded"] == 36
        assert metrics["ingest"]["quarantined"] == 0
        per_family = metrics["metrics"]["per_family"]
        assert metrics["metrics"]["families"] == len(per_family) >= 6
        attack_families = [k for k, v in per_family.items() if v["kind"] == "attack"]
        assert len(attack_families) >= 6
        for doc in per_family.values():
            assert doc["tested"] >= 1
            assert 0.0 <= doc["accuracy"] <= 1.0
            assert doc["margins"]["min"] <= doc["margins"]["p50"] <= doc["margins"]["max"]
            assert ("false_positive_rate" in doc) == (doc["kind"] == "benign")
            assert ("miss_rate" in doc) == (doc["kind"] == "attack")

    def test_cli_generates_and_reports(self, tmp_path, capsys):
        out = tmp_path / "cli_corpus"
        rc = gen_main(["--out", str(out), "--families", "spectre_v1,benign_compute",
                       "--count", "4", "--seed", "9"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 4 and (out / MANIFEST_NAME).exists()

    def test_cli_rejects_unknown_family(self, tmp_path, capsys):
        rc = gen_main(["--out", str(tmp_path / "x"), "--families", "nope", "--count", "2"])
        assert rc == 2
        assert "gen_spec" in capsys.readouterr().err

    def test_cli_list_families(self, capsys):
        assert gen_main(["--list-families"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "spectre_v4" in doc and doc["spectre_v4"]["label"] == 1
