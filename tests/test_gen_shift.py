"""Shift-schedule semantics: validation, determinism, phase boundaries.

A schedule is the replay bench's ground truth — if its phase boundaries or
its determinism slipped, every BENCH_drift number would silently stop
meaning anything.  These tests pin: strict schedule validation, byte-level
replay determinism (a stream is a pure function of ``(schedule, seed)``),
exact phase-boundary behavior, bounded spec perturbation, JSON round-trips,
and the ``load_schedule`` CLI argument grammar.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import GenSpecError
from repro.gen import (
    BUILTIN_SCHEDULES,
    FAMILY_REGISTRY,
    PRE_SHIFT_MIX,
    ShiftPhase,
    ShiftSchedule,
    load_schedule,
    perturb_spec,
)
from repro.gen.shift import attenuation_shift, novel_probe_shift
from repro.sim.trace import encode_trace


def two_phase(shift_at: int = 10) -> ShiftSchedule:
    return novel_probe_shift(shift_at)


class TestPhaseValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(GenSpecError, match=">= 0"):
            ShiftPhase(at=-1, mix={"spectre_v1": 1.0})

    def test_empty_mix_rejected(self):
        with pytest.raises(GenSpecError, match="empty"):
            ShiftPhase(at=0, mix={})

    @pytest.mark.parametrize("weight", [0.0, -1.0, "heavy", None])
    def test_non_positive_weight_rejected(self, weight):
        with pytest.raises(GenSpecError, match="weight"):
            ShiftPhase(at=0, mix={"spectre_v1": weight})

    def test_perturb_for_family_outside_mix_rejected(self):
        with pytest.raises(GenSpecError, match="not in its mix"):
            ShiftPhase(
                at=0,
                mix={"spectre_v1": 1.0},
                perturb={"flush_reload": {"amplitude_mul": 0.5}},
            )

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(GenSpecError, match="unknown phase fields"):
            ShiftPhase.from_dict({"at": 0, "mix": {"spectre_v1": 1}, "shift": 3})


class TestScheduleValidation:
    def test_needs_at_least_one_phase(self):
        with pytest.raises(GenSpecError, match="at least one phase"):
            ShiftSchedule([])

    def test_first_phase_must_start_at_zero(self):
        with pytest.raises(GenSpecError, match="start at 0"):
            ShiftSchedule([ShiftPhase(at=5, mix=dict(PRE_SHIFT_MIX))])

    def test_starts_strictly_increasing(self):
        phases = [
            ShiftPhase(at=0, mix=dict(PRE_SHIFT_MIX)),
            ShiftPhase(at=10, mix=dict(PRE_SHIFT_MIX)),
            ShiftPhase(at=10, mix=dict(PRE_SHIFT_MIX)),
        ]
        with pytest.raises(GenSpecError, match="strictly increasing"):
            ShiftSchedule(phases)

    def test_unknown_family_named_with_candidates(self):
        with pytest.raises(GenSpecError, match="unknown family 'rowhammer'"):
            ShiftSchedule([ShiftPhase(at=0, mix={"rowhammer": 1.0})])


class TestPhaseStructure:
    def test_boundary_is_exact(self):
        schedule = two_phase(shift_at=10)
        assert schedule.phase_index(0) == 0
        assert schedule.phase_index(9) == 0
        assert schedule.phase_index(10) == 1
        assert schedule.phase_index(10_000) == 1  # last phase holds forever
        assert schedule.shift_points() == [10]
        with pytest.raises(GenSpecError, match=">= 0"):
            schedule.phase_index(-1)

    def test_stream_draws_only_from_current_phase_mix(self):
        schedule = two_phase(shift_at=10)
        pre = set(schedule.phases[0].mix)
        post = set(schedule.phases[1].mix)
        for index in range(30):
            name = schedule.spec_at(seed=3, index=index).name
            assert name in (pre if index < 10 else post)

    def test_pre_shift_is_phase_zero_forever(self):
        schedule = two_phase(shift_at=10)
        frozen = schedule.pre_shift()
        assert len(frozen.phases) == 1
        assert frozen.shift_points() == []
        # beyond the original shift point, pre_shift still draws phase 0
        names = {frozen.spec_at(seed=3, index=i).name for i in range(10, 60)}
        assert names <= set(PRE_SHIFT_MIX)

    def test_families_in_first_seen_order(self):
        schedule = two_phase(shift_at=10)
        fams = schedule.families()
        assert fams[: len(PRE_SHIFT_MIX)] == list(PRE_SHIFT_MIX)
        assert "prime_probe" in fams


class TestDeterminism:
    def test_stream_is_pure_function_of_schedule_and_seed(self):
        a = two_phase(shift_at=5)
        b = two_phase(shift_at=5)  # independent instance, same parameters
        for index in (0, 4, 5, 17):
            ta = a.synthesize(seed=7, index=index)
            tb = b.synthesize(seed=7, index=index)
            assert encode_trace(ta) == encode_trace(tb)

    def test_seed_and_index_both_matter(self):
        schedule = two_phase(shift_at=5)
        base = encode_trace(schedule.synthesize(seed=7, index=2))
        assert encode_trace(schedule.synthesize(seed=8, index=2)) != base
        assert encode_trace(schedule.synthesize(seed=7, index=3)) != base

    def test_stream_yields_indexed_traces(self):
        schedule = two_phase(shift_at=5)
        out = list(schedule.stream(seed=7, count=4, start=3))
        assert [i for i, _ in out] == [3, 4, 5, 6]
        for index, trace in out:
            assert encode_trace(trace) == encode_trace(schedule.synthesize(7, index))

    def test_pre_shift_indices_unchanged_by_later_phases(self):
        # adding a phase at 10 must not disturb the bytes of indices 0..9
        shifted = two_phase(shift_at=10)
        frozen = shifted.pre_shift()
        for index in range(10):
            assert encode_trace(shifted.synthesize(5, index)) == encode_trace(
                frozen.synthesize(5, index)
            )


class TestPerturbSpec:
    def test_none_and_empty_are_identity(self):
        spec = FAMILY_REGISTRY["spectre_v1"]
        assert perturb_spec(spec, None) is spec
        assert perturb_spec(spec, {}) is spec

    def test_amplitude_and_signature_scale(self):
        spec = FAMILY_REGISTRY["spectre_v1"]
        out = perturb_spec(spec, {"amplitude_mul": 0.5, "signature_mul": 2.0})
        assert out.amplitude[0] == pytest.approx(spec.amplitude[0] * 0.5)
        assert out.amplitude[1] == pytest.approx(spec.amplitude[1] * 0.5)
        for col, w in spec.signature.items():
            assert out.signature[col] == pytest.approx(w * 2.0)
        assert out.name == spec.name and out.label == spec.label

    def test_burst_clamped_into_unit_interval(self):
        spec = FAMILY_REGISTRY["spectre_v1"]
        out = perturb_spec(spec, {"burst_mul": 50.0})
        assert out.burst_frac[1] <= 1.0

    def test_noise_clamped(self):
        spec = FAMILY_REGISTRY["spectre_v1"]
        out = perturb_spec(spec, {"noise_mul": 100.0})
        assert 0.0 < out.noise <= 10.0

    def test_unknown_knob_rejected(self):
        with pytest.raises(GenSpecError, match="unknown perturbation knobs"):
            perturb_spec(FAMILY_REGISTRY["spectre_v1"], {"volume_mul": 2.0})

    @pytest.mark.parametrize("value", [0.0, -1.0, 101.0, "big"])
    def test_out_of_range_knob_rejected(self, value):
        with pytest.raises(GenSpecError, match="outside"):
            perturb_spec(FAMILY_REGISTRY["spectre_v1"], {"amplitude_mul": value})

    def test_attenuation_schedule_uses_perturbed_specs(self):
        schedule = attenuation_shift(5, amplitude_mul=0.25)
        base = FAMILY_REGISTRY["spectre_v1"]
        # find a post-shift index that drew the perturbed attack family
        for index in range(5, 60):
            spec = schedule.spec_at(seed=1, index=index)
            if spec.name == "spectre_v1":
                assert spec.amplitude[1] == pytest.approx(base.amplitude[1] * 0.25)
                break
        else:
            pytest.fail("no post-shift spectre_v1 draw in 55 indices")


class TestSerialization:
    def test_json_round_trip_preserves_stream(self):
        schedule = attenuation_shift(7)
        clone = ShiftSchedule.from_dict(json.loads(json.dumps(schedule.to_dict())))
        assert clone.to_dict() == schedule.to_dict()
        for index in (0, 6, 7, 20):
            assert encode_trace(clone.synthesize(3, index)) == encode_trace(
                schedule.synthesize(3, index)
            )

    def test_from_dict_rejects_malformed_document(self):
        with pytest.raises(GenSpecError, match="phases"):
            ShiftSchedule.from_dict({"stages": []})


class TestLoadSchedule:
    def test_builtin_with_shift_index(self):
        schedule = load_schedule("novel_probe_shift:25")
        assert schedule.shift_points() == [25]

    def test_every_builtin_resolves(self):
        for name in BUILTIN_SCHEDULES:
            assert load_schedule(f"{name}:10").shift_points() == [10]

    def test_builtin_without_index_rejected(self):
        with pytest.raises(GenSpecError, match="needs a shift index"):
            load_schedule("evasive_shift")

    def test_non_integer_index_rejected(self):
        with pytest.raises(GenSpecError, match="integer shift index"):
            load_schedule("evasive_shift:soon")

    def test_shift_index_must_be_positive(self):
        with pytest.raises(GenSpecError, match=">= 1"):
            load_schedule("evasive_shift:0")

    def test_json_file_path(self, tmp_path):
        doc = novel_probe_shift(12).to_dict()
        path = tmp_path / "schedule.json"
        path.write_text(json.dumps(doc))
        assert load_schedule(str(path)).shift_points() == [12]

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(GenSpecError, match="cannot load schedule"):
            load_schedule(str(tmp_path / "nope.json"))
