#!/usr/bin/env python3
"""(Re)generate the golden regression corpus and its expected metrics.

Writes eight tiny, cleanly-encoded traces (four benign across two programs,
four attacks across two classes) into ``tests/fixtures/golden/`` and records
the seed-stable subset of the pipeline's ``metrics.json`` for them in
``expected_metrics.json``.  ``tests/test_golden_regression.py`` asserts the
pipeline keeps reproducing those numbers exactly.

Run from the repository root after an *intentional* behavior change::

    PYTHONPATH=src python tests/fixtures/make_golden.py

and commit the diff; an unintentional diff in the fixture expectations is
exactly the accuracy drift the regression test exists to catch.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent.parent / "src"))

from repro.pipeline import PipelineConfig, run_pipeline  # noqa: E402
from repro.sim.trace import Trace, write_trace  # noqa: E402

GOLDEN_DIR = HERE / "golden"

#: pipeline knobs the expectations are pinned to; the regression test reuses
#: these verbatim
GOLDEN_CONFIG = {
    "test_frac": 0.3,
    "epochs": 8,
    "seed": 7,
    "n_models": 2,
    "theta": 5.0,
}

#: metrics.json subsections that are deterministic for a fixed seed
STABLE_KEYS = ("ingest", "dataset", "training", "metrics")

_SPECS = [
    # (file stem, program, label, attack_class, loc, rng seed)
    ("benign_a_0", "benign_a", -1, None, 0.0, 1101),
    ("benign_a_1", "benign_a", -1, None, 0.0, 1102),
    ("benign_b_0", "benign_b", -1, None, 0.5, 1103),
    ("benign_b_1", "benign_b", -1, None, 0.5, 1104),
    ("spectre_0", "spectre_v1", 1, "spectre_like", 6.0, 2101),
    ("spectre_1", "spectre_v1", 1, "spectre_like", 6.0, 2102),
    ("flush_0", "flush_reload", 1, "flush_like", 7.0, 2103),
    ("flush_1", "flush_reload", 1, "flush_like", 7.0, 2104),
]


def build_corpus(root: Path) -> list[Path]:
    root.mkdir(parents=True, exist_ok=True)
    paths = []
    for stem, program, label, attack_class, loc, seed in _SPECS:
        rng = np.random.default_rng(seed)
        trace = Trace(
            program=program,
            label=label,
            attack_class=attack_class,
            interval=10_000,
            rows=rng.normal(loc=loc, scale=1.0, size=(6, 12)),
            stat_names=[f"stat_{i}" for i in range(12)],
            meta={"seed": seed},
        )
        path = root / f"{stem}.pkl"
        write_trace(path, trace)
        paths.append(path)
    return paths


def expected_metrics(corpus: Path) -> dict:
    with tempfile.TemporaryDirectory() as out:
        metrics = run_pipeline(
            PipelineConfig(trace_dir=str(corpus), out_dir=out, **GOLDEN_CONFIG)
        )
    return {key: metrics[key] for key in STABLE_KEYS}


def main() -> int:
    paths = build_corpus(GOLDEN_DIR)
    expected = expected_metrics(GOLDEN_DIR)
    out_path = GOLDEN_DIR / "expected_metrics.json"
    out_path.write_text(json.dumps(expected, indent=2, sort_keys=True) + "\n")
    print(f"wrote {len(paths)} traces and {out_path.relative_to(HERE.parent.parent)}")
    print(json.dumps(expected["metrics"], indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
