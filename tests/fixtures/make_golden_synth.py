#!/usr/bin/env python3
"""(Re)generate the golden *synthetic* corpus and its expected metrics.

Materializes a small all-families corpus under
``tests/fixtures/golden_synth/corpus`` with ``repro.gen`` (sharded layout,
MANIFEST.json) and records the seed-stable subset of the pipeline's
``metrics.json`` — including the per-family accuracy/FPR/margin breakdown —
in ``expected_metrics.json``.  ``tests/test_golden_synth_regression.py``
asserts two things forever after:

1. regenerating the corpus is *byte-identical* (the generator's stream
   contract, GEN_VERSION, held across platforms and numpy versions), and
2. the pipeline keeps reproducing the recorded per-family metrics exactly.

Run from the repository root after an *intentional* generator or pipeline
behavior change::

    PYTHONPATH=src python tests/fixtures/make_golden_synth.py

and commit the diff (corpus files, MANIFEST.json, expected_metrics.json).
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent.parent / "src"))

from repro.gen import generate_corpus  # noqa: E402
from repro.pipeline import PipelineConfig, run_pipeline  # noqa: E402

GOLDEN_SYNTH_DIR = HERE / "golden_synth"
CORPUS_DIR = GOLDEN_SYNTH_DIR / "corpus"

#: generator knobs the corpus bytes are pinned to
GEN_CONFIG = {"families": "all", "count": 36, "seed": 11}

#: pipeline knobs the expectations are pinned to; the regression test
#: reuses these verbatim
GOLDEN_CONFIG = {
    "test_frac": 0.3,
    "epochs": 8,
    "seed": 7,
    "n_models": 2,
    "theta": 5.0,
}

#: metrics.json subsections that are deterministic for a fixed seed
STABLE_KEYS = ("ingest", "dataset", "training", "metrics")


def expected_metrics(corpus: Path) -> dict:
    with tempfile.TemporaryDirectory() as out:
        metrics = run_pipeline(
            PipelineConfig(trace_dir=str(corpus), out_dir=out, **GOLDEN_CONFIG)
        )
    return {key: metrics[key] for key in STABLE_KEYS}


def main() -> int:
    shutil.rmtree(CORPUS_DIR, ignore_errors=True)
    report = generate_corpus(CORPUS_DIR, **GEN_CONFIG)
    expected = expected_metrics(CORPUS_DIR)
    expected["corpus_digest"] = report.corpus_digest
    out_path = GOLDEN_SYNTH_DIR / "expected_metrics.json"
    out_path.write_text(json.dumps(expected, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {report.count} traces (digest {report.corpus_digest[:12]}) and "
        f"{out_path.relative_to(HERE.parent.parent)}"
    )
    summary = {
        family: {
            "kind": doc["kind"],
            "accuracy": doc["accuracy"],
            "rate": doc.get("false_positive_rate", doc.get("miss_rate")),
        }
        for family, doc in expected["metrics"]["per_family"].items()
    }
    print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
