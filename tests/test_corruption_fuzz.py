"""Corruption fuzzing against real trace-cache files.

The contract under test: whatever damage the bytes suffer, ``decode_trace``
either returns a plausible Trace or raises a ``TraceDecodeError`` subclass.
No bare ``Exception``, no ``ValueError`` from numpy, no hangs.  The ingest
layer then turns those typed failures into quarantine entries instead of
crashing the corpus walk.
"""

from __future__ import annotations

import random
import time

import pytest

from conftest import write_synthetic_corpus
from repro.errors import TraceDecodeError
from repro.ingest import QuarantineManifest, TraceLoader
from repro.sim.trace import decode_trace

#: files fuzzed per run; the corpus is sampled with a stride so multiple
#: programs and both attack/benign captures are covered
N_FILES = 6
MUTATIONS_PER_FILE = 8
DECODE_BUDGET_S = 20.0


def _decode_or_typed_error(data: bytes, label: str) -> None:
    deadline = time.monotonic() + DECODE_BUDGET_S
    try:
        trace, _ = decode_trace(data, path=label, deadline=deadline)
    except TraceDecodeError:
        return  # typed failure: exactly what the contract promises
    except Exception as exc:  # pragma: no cover - this is the bug detector
        pytest.fail(f"{label}: untyped {type(exc).__name__}: {exc}")
    else:
        assert trace.rows.ndim == 2, f"{label}: decoded to malformed rows"
        assert trace.label in (-1, 1), f"{label}: decoded to bad label"


@pytest.fixture(scope="module")
def fuzz_targets(real_trace_paths):
    stride = max(1, len(real_trace_paths) // N_FILES)
    return [(p, p.read_bytes()) for p in real_trace_paths[::stride][:N_FILES]]


def test_truncation_at_random_offsets(fuzz_targets):
    rng = random.Random(0xBEEF)
    for path, data in fuzz_targets:
        cuts = [0, 1, 7, 8, 9] + [rng.randrange(len(data)) for _ in range(MUTATIONS_PER_FILE)]
        for cut in cuts:
            _decode_or_typed_error(data[:cut], f"{path.name}[:{cut}]")


def test_random_byte_flips(fuzz_targets):
    rng = random.Random(0xF00D)
    for path, data in fuzz_targets:
        for trial in range(MUTATIONS_PER_FILE):
            buf = bytearray(data)
            for _ in range(rng.randint(1, 128)):
                buf[rng.randrange(len(buf))] ^= 1 << rng.randrange(8)
            _decode_or_typed_error(bytes(buf), f"{path.name}#flip{trial}")


def test_random_byte_deletions(fuzz_targets):
    """Deletion mirrors the damage the seed corpus actually suffered."""
    rng = random.Random(0xD00D)
    for path, data in fuzz_targets:
        for trial in range(MUTATIONS_PER_FILE):
            buf = bytearray(data)
            for _ in range(rng.randint(1, 12)):
                if len(buf) < 2:
                    break
                start = rng.randrange(len(buf) - 1)
                del buf[start : start + rng.randint(1, 32)]
            _decode_or_typed_error(bytes(buf), f"{path.name}#del{trial}")


def test_ingest_quarantines_instead_of_crashing(tmp_path, fuzz_targets):
    """A corpus with smashed files alongside good ones loads the good ones
    and quarantines the rest with typed reasons."""
    corpus = tmp_path / "corpus"
    good = write_synthetic_corpus(corpus, n_benign=2, n_attack=2)
    rng = random.Random(1)
    _, real_bytes = fuzz_targets[0]
    bad_variants = {
        "smashed_header.pkl": b"\x00" * 64,
        "truncated.pkl": real_bytes[: len(real_bytes) // 3],
        "empty.pkl": b"",
        "noise.pkl": bytes(rng.randrange(256) for _ in range(4096)),
    }
    for name, payload in bad_variants.items():
        (corpus / name).write_bytes(payload)

    loader = TraceLoader(corpus, decode_timeout_s=DECODE_BUDGET_S)
    results, manifest = loader.load_corpus()

    assert len(results) >= len(good)  # every clean file survived
    assert isinstance(manifest, QuarantineManifest)
    quarantined = {e.path.rsplit("/", 1)[-1] for e in manifest.entries}
    # the outright-hopeless files must be quarantined, not raised
    assert "smashed_header.pkl" in quarantined
    assert "empty.pkl" in quarantined
    for entry in manifest.entries:
        assert entry.code in {
            "bad_header",
            "truncated",
            "schema_mismatch",
            "decode_timeout",
            "decode_error",
            "retry_exhausted",
        }
        assert entry.error  # exception class name captured
