"""Unit tests for the content-addressed feature cache: round-trip fidelity,
corruption-safe reads, atomic writes, and graceful degradation."""

from __future__ import annotations

import numpy as np

from conftest import make_trace
from repro.cache import FeatureCache
from repro.sim.salvage import SalvageReport
from repro.sim.trace import DecodeReport, decode_trace, encode_trace


def _decoded(trace):
    data = encode_trace(trace)
    return data, *decode_trace(data, path="unit.pkl")


def test_miss_then_hit_round_trip(tmp_path):
    cache = FeatureCache(tmp_path / "cache")
    trace = make_trace(seed=3)
    payload, decoded, report = _decoded(trace)
    key = cache.key(payload)

    assert cache.get(key) is None
    assert cache.stats.misses == 1

    assert cache.put(key, decoded, report)
    got = cache.get(key, path="unit.pkl")
    assert got is not None
    cached_trace, cached_report = got
    assert cached_trace == decoded
    assert cached_report.mode == report.mode
    assert cached_report.notes == report.notes
    assert cached_report.degraded == report.degraded
    assert cache.stats.hits == 1 and cache.stats.stores == 1
    assert len(cache) == 1


def test_salvage_report_survives_round_trip(tmp_path):
    cache = FeatureCache(tmp_path)
    trace = make_trace(seed=5)
    payload = encode_trace(trace)
    report = DecodeReport(path="damaged.pkl", mode="salvage", notes=["mangled_header"])
    report.salvage = SalvageReport(
        expected_floats=48,
        recovered_floats=40,
        nan_floats=8,
        resyncs=2,
        bytes_dropped=11,
        truncated=False,
        clean=False,
    )
    key = cache.key(payload)
    assert cache.put(key, trace, report)
    _, cached_report = cache.get(key, path="damaged.pkl")
    assert cached_report.mode == "salvage"
    assert cached_report.degraded
    assert cached_report.salvage is not None
    assert cached_report.salvage.describe() == report.salvage.describe()


def test_key_is_content_addressed(tmp_path):
    cache = FeatureCache(tmp_path)
    a = encode_trace(make_trace(seed=1))
    b = encode_trace(make_trace(seed=2))
    assert cache.key(a) == cache.key(a)
    assert cache.key(a) != cache.key(b)
    # a single flipped bit keys to a different entry
    mutated = bytearray(a)
    mutated[len(mutated) // 2] ^= 0x01
    assert cache.key(bytes(mutated)) != cache.key(a)


def test_corrupt_entry_is_invalidated_and_deleted(tmp_path):
    cache = FeatureCache(tmp_path)
    trace = make_trace(seed=7)
    payload, decoded, report = _decoded(trace)
    key = cache.key(payload)
    cache.put(key, decoded, report)
    entry = cache.entry_path(key)

    blob = bytearray(entry.read_bytes())
    blob[-8] ^= 0xFF  # damage the codec body: CRC check must reject it
    entry.write_bytes(bytes(blob))

    assert cache.get(key) is None
    assert cache.stats.invalidated == 1
    assert not entry.exists()
    # next decode can repopulate the same key
    assert cache.put(key, decoded, report)
    assert cache.get(key) is not None


def test_truncated_and_garbage_entries_are_misses(tmp_path):
    cache = FeatureCache(tmp_path)
    trace = make_trace(seed=9)
    payload, decoded, report = _decoded(trace)
    key = cache.key(payload)
    cache.put(key, decoded, report)
    entry = cache.entry_path(key)

    full = entry.read_bytes()
    for bad in (b"", b"RFC1", full[: len(full) // 2], b"\x00" * 64):
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_bytes(bad)
        assert cache.get(key) is None, f"accepted corrupt entry {bad[:8]!r}"
        assert not entry.exists()


def test_atomic_write_leaves_no_temp_files(tmp_path):
    cache = FeatureCache(tmp_path / "c")
    for seed in range(5):
        trace = make_trace(seed=seed)
        payload, decoded, report = _decoded(trace)
        cache.put(cache.key(payload), decoded, report)
    leftovers = [p for p in (tmp_path / "c").rglob("*") if p.name.endswith(".tmp")]
    assert leftovers == []
    assert len(cache) == 5


def test_unwritable_root_degrades_to_cache_off(tmp_path):
    blocker = tmp_path / "not_a_dir"
    blocker.write_text("occupied")
    cache = FeatureCache(blocker / "cache")  # parent is a file: mkdir fails
    trace = make_trace(seed=11)
    payload, decoded, report = _decoded(trace)
    key = cache.key(payload)
    assert cache.put(key, decoded, report) is False
    assert cache.stats.errors >= 1
    assert cache.get(key) is None  # still just a miss, never a raise


def test_nan_rows_survive_caching(tmp_path):
    cache = FeatureCache(tmp_path)
    trace = make_trace(seed=13)
    trace.rows[1, 2] = np.nan
    trace.rows[0, 0] = np.inf
    payload, decoded, report = _decoded(trace)
    key = cache.key(payload)
    cache.put(key, decoded, report)
    cached_trace, _ = cache.get(key)
    assert np.array_equal(cached_trace.rows, decoded.rows, equal_nan=True)
