"""Seeded fault-matrix regression: across a {0%, 25%, 50%} x {io, corruption}
fault grid, ``--workers 4`` must produce the same ``metrics.json`` and
quarantine manifest as ``--workers 1`` -- parallelism changes wall-clock,
never semantics.  Only run timestamps and timings may differ."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import IngestError
from repro.faults import FaultPlan
from repro.ingest import RetryPolicy
from repro.pipeline import PipelineConfig, run_pipeline

GOLDEN = Path(__file__).resolve().parent / "fixtures" / "golden"

FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002, jitter=0.0)

#: volatile metrics.json fields: wall-clock, never semantics
_VOLATILE = ("created", "elapsed_s", "timings")

GRID = [
    pytest.param(None, id="clean"),
    pytest.param(FaultPlan(io_rate=0.25, seed=11), id="io-25"),
    pytest.param(FaultPlan(io_rate=0.50, seed=11), id="io-50"),
    pytest.param(FaultPlan(corrupt_rate=0.25, seed=11), id="corrupt-25"),
    pytest.param(FaultPlan(corrupt_rate=0.50, seed=11), id="corrupt-50"),
]


def _run(out_dir: Path, workers: int, faults: FaultPlan | None):
    config = PipelineConfig(
        trace_dir=str(GOLDEN),
        out_dir=str(out_dir),
        epochs=4,
        seed=7,
        n_models=1,
        theta=5.0,
        workers=workers,
        retry_policy=FAST_RETRY,
        faults=faults,
    )
    try:
        run_pipeline(config)
    except IngestError:
        # a grid cell may quarantine the whole corpus; both worker counts
        # must then fail identically, with identical manifests
        pass
    metrics = None
    if (out_dir / "metrics.json").exists():
        metrics = json.loads((out_dir / "metrics.json").read_text())
        for key in _VOLATILE:
            metrics.pop(key, None)
    quarantine = json.loads((out_dir / "quarantine.json").read_text())
    quarantine.pop("created", None)
    return metrics, quarantine


@pytest.mark.parametrize("faults", GRID)
def test_worker_count_is_semantics_free(tmp_path, faults):
    serial_metrics, serial_quarantine = _run(tmp_path / "w1", workers=1, faults=faults)
    pooled_metrics, pooled_quarantine = _run(tmp_path / "w4", workers=4, faults=faults)
    assert pooled_quarantine == serial_quarantine
    assert pooled_metrics == serial_metrics


def test_faults_actually_fire_on_grid():
    """Sanity: the 50% cells must inject something, or the matrix is vacuous."""
    plan = FaultPlan(io_rate=0.50, corrupt_rate=0.50, seed=11)
    from repro.faults import FaultInjector

    injector = FaultInjector(plan)
    paths = [str(p) for p in sorted(GOLDEN.glob("*.pkl"))]
    corrupted = sum(injector.will_corrupt(p) for p in paths)
    assert corrupted > 0
