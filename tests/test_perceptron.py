"""Hashed perceptron: convergence on linearly separable data, clamping,
persistence round-trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model import HashedPerceptron


def separable_set(n: int = 200, d: int = 10, gap: float = 4.0, seed: int = 0):
    """Two well-separated gaussian blobs, labels in {-1, +1}."""
    rng = np.random.default_rng(seed)
    X_neg = rng.normal(loc=-gap / 2, scale=0.5, size=(n // 2, d))
    X_pos = rng.normal(loc=+gap / 2, scale=0.5, size=(n // 2, d))
    X = np.vstack([X_neg, X_pos])
    y = np.array([-1] * (n // 2) + [1] * (n // 2), dtype=np.int64)
    order = rng.permutation(n)
    return X[order], y[order]


def test_converges_on_separable_data():
    X, y = separable_set()
    model = HashedPerceptron(X.shape[1], theta=5.0, seed=1)
    history = model.fit(X, y, epochs=30)
    assert history[-1] < history[0]  # updates decrease as it converges
    assert (model.predict(X) == y).mean() == 1.0


def test_generalizes_to_held_out_separable_data():
    X, y = separable_set(seed=0)
    Xt, yt = separable_set(seed=99)
    model = HashedPerceptron(X.shape[1], theta=5.0, seed=1)
    model.fit(X, y, epochs=30)
    assert (model.predict(Xt) == yt).mean() >= 0.95


def test_weights_respect_clamp():
    X, y = separable_set()
    model = HashedPerceptron(X.shape[1], theta=1000.0, weight_clamp=7, seed=0)
    model.fit(X, y, epochs=10)
    assert model.weights.max() <= 7
    assert model.weights.min() >= -7
    assert np.abs(model.weights).max() == 7  # huge theta forces saturation


def test_default_theta_scales_sublinearly():
    # with ~1k summands a linear theta never lets training converge; the
    # default must grow like sqrt(n_features)
    small = HashedPerceptron(16).theta
    large = HashedPerceptron(1159).theta
    assert large < 1159  # far below the linear regime
    assert large > small


def test_decision_is_deterministic():
    X, y = separable_set(n=40)
    model = HashedPerceptron(X.shape[1], seed=5)
    model.fit(X, y, epochs=3)
    np.testing.assert_array_equal(model.decision(X), model.decision(X))


def test_hash_seed_changes_table_assignment():
    X, _ = separable_set(n=10)
    a = HashedPerceptron(X.shape[1], seed=1)
    b = HashedPerceptron(X.shape[1], seed=2)
    assert not np.array_equal(a._flat_indices(X), b._flat_indices(X))


def test_save_load_round_trip(tmp_path):
    X, y = separable_set()
    model = HashedPerceptron(X.shape[1], theta=5.0, seed=3)
    model.fit(X, y, epochs=10)
    path = tmp_path / "model.npz"
    model.save(path)
    reloaded = HashedPerceptron.load(path)
    np.testing.assert_array_equal(model.weights, reloaded.weights)
    np.testing.assert_array_equal(model.decision(X), reloaded.decision(X))
    assert reloaded.theta == model.theta


def test_load_garbage_is_typed(tmp_path):
    path = tmp_path / "model.npz"
    path.write_bytes(b"not a model")
    with pytest.raises(ModelError):
        HashedPerceptron.load(path)


def test_bad_inputs_are_typed():
    model = HashedPerceptron(4)
    with pytest.raises(ModelError):
        model.decision(np.ones((3, 5)))  # wrong width
    with pytest.raises(ModelError):
        model.fit_epoch(np.ones((2, 4)), np.array([0, 2]))  # labels not in {-1,1}
    with pytest.raises(ModelError):
        HashedPerceptron(0)
