"""Incremental-learning contract for the hashed perceptron.

The drift supervisor folds labeled feedback into a served model with
``partial_fit`` / ``ensemble_partial_fit`` instead of a from-scratch refit.
That is only safe because of one pinned property: **one ``partial_fit`` pass
over a batch is bit-identical to the first epoch ``fit`` would have run** on
that batch with the same seed — same shuffle, same kernel, same update rule,
same resulting weight tables.  These tests pin that property plus the
incremental semantics built on top of it (updates start from current
weights, ensemble seed offsets decorrelate members, labels are validated).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.model import HashedPerceptron, ensemble_partial_fit

N_FEATURES = 10


def separable(n: int = 80, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    y = np.where(rng.random(n) > 0.5, 1, -1)
    X = rng.normal(size=(n, N_FEATURES)) + 2.5 * y[:, None]
    return X, y


def noisy(n: int = 80, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    y = np.where(rng.random(n) > 0.5, 1, -1)
    return rng.normal(size=(n, N_FEATURES)), y


class TestBitIdentity:
    @pytest.mark.parametrize("model_seed", [1, 7, 42])
    @pytest.mark.parametrize("data_seed", [0, 3])
    def test_one_pass_matches_first_fit_epoch(self, model_seed, data_seed):
        X, y = noisy(seed=data_seed)
        a = HashedPerceptron(N_FEATURES, seed=model_seed, theta=5.0)
        b = HashedPerceptron(N_FEATURES, seed=model_seed, theta=5.0)
        updates = a.partial_fit(X, y)  # seed defaults to the model's own
        history = b.fit(X, y, epochs=1)
        assert updates == history[0]
        assert np.array_equal(a.weights, b.weights)

    def test_explicit_seed_matches_seeded_fit(self):
        X, y = noisy(seed=5)
        a = HashedPerceptron(N_FEATURES, seed=1, theta=5.0)
        b = HashedPerceptron(N_FEATURES, seed=1, theta=5.0)
        a.partial_fit(X, y, seed=99)
        b.fit(X, y, epochs=1, seed=99)
        assert np.array_equal(a.weights, b.weights)

    def test_reference_kernel_agrees(self):
        X, y = noisy(seed=2)
        a = HashedPerceptron(N_FEATURES, seed=3, theta=5.0)
        b = HashedPerceptron(N_FEATURES, seed=3, theta=5.0)
        a.partial_fit(X, y, kernel="blocked")
        b.partial_fit(X, y, kernel="reference")
        assert np.array_equal(a.weights, b.weights)

    def test_second_pass_differs_from_second_fit_epoch_by_design(self):
        # fit's epoch 2 reuses an advanced rng; a second partial_fit restarts
        # from the seed.  The contract is epoch-1 identity only — pin that the
        # streams really do diverge afterwards so nobody "fixes" it silently.
        X, y = noisy(seed=4)
        a = HashedPerceptron(N_FEATURES, seed=1, theta=5.0)
        b = HashedPerceptron(N_FEATURES, seed=1, theta=5.0)
        a.partial_fit(X, y)
        a.partial_fit(X, y)
        hist = b.fit(X, y, epochs=2)
        if len(hist) == 2:  # fit may stop early if epoch 1 converged
            assert not np.array_equal(a.weights, b.weights)


class TestIncrementalSemantics:
    def test_updates_start_from_current_weights(self):
        X, y = separable()
        model = HashedPerceptron(N_FEATURES, seed=1, theta=5.0)
        model.fit(X, y, epochs=10)
        before = model.weights.copy()
        # a pass over already-learned data makes (near) zero updates and
        # leaves the weights (near) untouched — it did not restart training
        updates = model.partial_fit(X, y)
        assert updates <= 2
        if updates == 0:
            assert np.array_equal(model.weights, before)

    def test_repeated_passes_converge_on_separable_data(self):
        X, y = separable(seed=9)
        model = HashedPerceptron(N_FEATURES, seed=2, theta=5.0)
        counts = [model.partial_fit(X, y, seed=100 + p) for p in range(12)]
        assert counts[-1] == 0
        preds = np.where(model.decision(X) > 0, 1, -1)
        assert (preds == y).mean() == 1.0

    def test_folds_in_new_distribution_without_forgetting(self):
        X_old, y_old = separable(seed=1)
        rng = np.random.default_rng(8)
        y_new = np.where(rng.random(60) > 0.5, 1, -1)
        # a different, disjoint footprint: shifted along other directions
        X_new = rng.normal(size=(60, N_FEATURES)) - 3.0 * y_new[:, None]
        model = HashedPerceptron(N_FEATURES, seed=4, theta=5.0)
        model.fit(X_old, y_old, epochs=10)
        for p in range(10):
            model.partial_fit(
                np.vstack([X_old, X_new]),
                np.concatenate([y_old, y_new]),
                seed=500 + p,
            )
        acc_old = (np.where(model.decision(X_old) > 0, 1, -1) == y_old).mean()
        acc_new = (np.where(model.decision(X_new) > 0, 1, -1) == y_new).mean()
        assert acc_old >= 0.9
        assert acc_new >= 0.9

    def test_no_shuffle_is_deterministic_order(self):
        X, y = noisy(seed=6)
        a = HashedPerceptron(N_FEATURES, seed=1, theta=5.0)
        b = HashedPerceptron(N_FEATURES, seed=2, theta=5.0)
        b._salts = a._salts.copy()  # same tables, different seed
        a.partial_fit(X, y, shuffle=False)
        b.partial_fit(X, y, shuffle=False)
        assert np.array_equal(a.weights, b.weights)

    def test_rejects_bad_labels(self):
        X, _ = noisy(n=10)
        model = HashedPerceptron(N_FEATURES, seed=1)
        with pytest.raises(ModelError, match="labels"):
            model.partial_fit(X, np.zeros(10, dtype=np.int64))


class TestEnsemblePartialFit:
    def test_default_seed_matches_per_member_fit(self):
        X, y = noisy(seed=7)
        members = [HashedPerceptron(N_FEATURES, seed=s, theta=5.0) for s in (1, 2, 3)]
        mirrors = [HashedPerceptron(N_FEATURES, seed=s, theta=5.0) for s in (1, 2, 3)]
        counts = ensemble_partial_fit(members, X, y)
        for m, mirror, updates in zip(members, mirrors, counts):
            assert mirror.fit(X, y, epochs=1)[0] == updates
            assert np.array_equal(m.weights, mirror.weights)

    def test_explicit_seed_offsets_members(self):
        X, y = noisy(seed=7)
        members = [HashedPerceptron(N_FEATURES, seed=s, theta=5.0) for s in (1, 2)]
        ensemble_partial_fit(members, X, y, seed=40)
        for k, seed in enumerate((1, 2)):
            mirror = HashedPerceptron(N_FEATURES, seed=seed, theta=5.0)
            mirror.partial_fit(X, y, seed=40 + 17 * k)
            assert np.array_equal(members[k].weights, mirror.weights)

    def test_empty_ensemble_rejected(self):
        X, y = noisy(n=4)
        with pytest.raises(ModelError, match="empty"):
            ensemble_partial_fit([], X, y)
