"""Golden regression: the full pipeline over the checked-in 8-trace fixture
corpus must keep reproducing the recorded metrics exactly.

This pins accuracy against silent drift from the cache / parallel-ingest /
batched-scoring refactors: any change to decode results, feature assembly,
the split, training order, or scoring shows up as a diff against
``tests/fixtures/golden/expected_metrics.json``.  If the change is
*intentional*, regenerate with ``PYTHONPATH=src python
tests/fixtures/make_golden.py`` and commit the new expectations.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.pipeline import PipelineConfig, run_pipeline

FIXTURES = Path(__file__).resolve().parent / "fixtures"
GOLDEN = FIXTURES / "golden"

_spec = importlib.util.spec_from_file_location("make_golden", FIXTURES / "make_golden.py")
make_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(make_golden)


@pytest.fixture(scope="module")
def expected() -> dict:
    path = GOLDEN / "expected_metrics.json"
    if not path.exists():
        pytest.skip("golden fixtures not generated in this checkout")
    return json.loads(path.read_text())


def _actual(out_dir, **overrides) -> dict:
    config = PipelineConfig(
        trace_dir=str(GOLDEN), out_dir=str(out_dir), **{**make_golden.GOLDEN_CONFIG, **overrides}
    )
    metrics = run_pipeline(config)
    # json round trip so int/float/list types compare like the stored doc
    return json.loads(json.dumps({k: metrics[k] for k in make_golden.STABLE_KEYS}))


def test_pipeline_reproduces_golden_metrics(tmp_path, expected):
    assert _actual(tmp_path / "run") == expected


def test_golden_metrics_unchanged_by_cache(tmp_path, expected):
    cache_dir = tmp_path / "cache"
    cold = _actual(tmp_path / "cold", cache_dir=str(cache_dir))
    warm = _actual(tmp_path / "warm", cache_dir=str(cache_dir))
    for actual in (cold, warm):
        actual["ingest"].pop("cache")
        assert actual == expected
    warm_doc = json.loads((tmp_path / "warm" / "metrics.json").read_text())
    assert warm_doc["ingest"]["cache"] == {"hits": 8, "misses": 0}


def test_golden_metrics_unchanged_by_workers(tmp_path, expected):
    assert _actual(tmp_path / "run", workers=4) == expected


def test_golden_corpus_is_intact():
    paths = sorted(GOLDEN.glob("*.pkl"))
    assert len(paths) == 8, "golden corpus must hold exactly 8 traces"
