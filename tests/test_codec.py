"""Codec contract: round-trip equality, versioned header handling, and a
typed error for every malformed input."""

from __future__ import annotations

import struct
import time

import numpy as np
import pytest

from conftest import make_trace
from repro.errors import BadHeader, TraceDecodeError, TruncatedTrace
from repro.sim.trace import TRACE_VERSION, decode_trace, encode_trace, read_trace


def test_round_trip_equality():
    trace = make_trace(
        program="spectre_v1", label=1, attack_class="spectre_v1", interval=50000, seed=3
    )
    decoded, report = decode_trace(encode_trace(trace))
    assert report.mode == "clean"
    assert not report.degraded
    assert decoded == trace
    assert decoded.stat_names == trace.stat_names
    assert np.array_equal(decoded.rows, trace.rows)


def test_round_trip_preserves_nan_rows():
    trace = make_trace(seed=5)
    trace.rows[1, 3] = np.nan
    decoded, _ = decode_trace(encode_trace(trace))
    assert decoded == trace  # Trace.__eq__ treats NaN==NaN per-cell


def test_round_trip_benign_negative_label():
    trace = make_trace(program="mcf_like", label=-1, attack_class=None)
    decoded, _ = decode_trace(encode_trace(trace))
    assert decoded.label == -1
    assert decoded.attack_class is None
    assert not decoded.is_attack


def test_header_is_version_prefixed():
    data = encode_trace(make_trace())
    (version,) = struct.unpack_from("<Q", data)
    assert version == TRACE_VERSION


def test_empty_input_is_typed():
    with pytest.raises(TraceDecodeError):
        decode_trace(b"")


def test_header_only_is_truncated():
    data = encode_trace(make_trace())[:8]
    with pytest.raises((TruncatedTrace, BadHeader)):
        decode_trace(data)


def test_wrong_version_is_bad_header():
    data = bytearray(encode_trace(make_trace()))
    struct.pack_into("<Q", data, 0, 999)
    with pytest.raises(BadHeader):
        decode_trace(bytes(data))


def test_garbage_is_typed():
    with pytest.raises(TraceDecodeError):
        decode_trace(b"\x00" * 256)


def test_non_trace_pickle_is_schema_mismatch():
    import pickle

    body = pickle.dumps({"not": "a trace"}, protocol=4)
    data = struct.pack("<Q", TRACE_VERSION) + body
    with pytest.raises(TraceDecodeError):
        decode_trace(data)


def test_truncated_body_is_typed():
    data = encode_trace(make_trace())
    for cut in (9, 20, len(data) // 2, len(data) - 1):
        with pytest.raises(TraceDecodeError):
            decode_trace(data[:cut])


def test_read_trace_real_file(real_trace_paths):
    trace, report = read_trace(real_trace_paths[0], deadline=time.monotonic() + 30)
    assert trace.n_features > 1000
    assert trace.n_intervals >= 1
    assert trace.label in (-1, 1)
    assert report.mode in ("clean", "salvage")


def test_real_corpus_sample_decodes(real_trace_paths):
    """Every 20th file across the corpus decodes to a plausible Trace."""
    for path in real_trace_paths[::20]:
        trace, _ = read_trace(path, deadline=time.monotonic() + 30)
        assert trace.rows.shape == (trace.n_intervals, trace.n_features)
        assert trace.interval in (0, 10000, 50000)
        if trace.is_attack:
            assert trace.attack_class
