"""Scoring-service failure modes and the golden serve/batch parity contract.

Each test spins a real :class:`ScoringService` on an ephemeral port inside
``asyncio.run`` and talks NDJSON to it over loopback — no mocked transport,
so slow-client and drain behavior is exercised for real.
"""

from __future__ import annotations

import asyncio
import base64
import json
import threading
from pathlib import Path

import numpy as np
import pytest

from conftest import make_trace
from repro.features import Normalizer, build_dataset
from repro.model import ArtifactStore, HashedPerceptron, margin_scales
from repro.pipeline import PipelineConfig, run_pipeline
from repro.serve import ScoringService, ServeConfig
from repro.sim.trace import decode_trace, encode_trace

GOLDEN_CONFIG = {"test_frac": 0.3, "epochs": 8, "seed": 7, "n_models": 2, "theta": 5.0}


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_artifact_root(tmp_path_factory):
    """A tiny published artifact for protocol/robustness tests."""
    root = tmp_path_factory.mktemp("serve") / "artifact"
    rng = np.random.default_rng(11)
    X = rng.normal(size=(40, 12))
    y = np.where(rng.random(40) > 0.5, 1, -1)
    norm = Normalizer().fit(X)
    Z = norm.transform(X)
    models = []
    for seed in (1, 2):
        m = HashedPerceptron(12, seed=seed, theta=5.0)
        m.fit(Z, y, epochs=3)
        models.append(m)
    ArtifactStore(root).publish(models, norm, margin_scales(models, Z))
    return root


def serve_config(root, **overrides) -> ServeConfig:
    base = dict(
        artifact_root=str(root),
        port=0,
        reload_poll_s=0,
        batch_window_ms=1.0,
        idle_timeout_s=10.0,
        request_timeout_s=5.0,
    )
    base.update(overrides)
    return ServeConfig(**base)


async def rpc(port: int, doc: dict, *, timeout: float = 10.0) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(json.dumps(doc).encode() + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        return json.loads(line)
    finally:
        writer.close()


async def http_probe(port: int, target: str) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(f"GET {target} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(1 << 16), timeout=5)
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(body)


def trace_payload(**kwargs) -> str:
    return base64.b64encode(encode_trace(make_trace(**kwargs))).decode()


# ---------------------------------------------------------------------------
# protocol + robustness
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_scores_payload_and_rows(self, small_artifact_root):
        async def scenario():
            service = ScoringService(serve_config(small_artifact_root))
            await service.start()
            try:
                r1 = await rpc(service.port, {"id": "a", "payload_b64": trace_payload()})
                assert r1["ok"] and r1["status"] == 200
                assert r1["verdict"] in (-1, 1)
                assert r1["decode_mode"] == "clean"
                rows = make_trace().rows.tolist()
                r2 = await rpc(service.port, {"id": "b", "rows": rows})
                assert r2["ok"] and r2["decode_mode"] == "rows"
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_corrupt_payload_structured_error_and_quarantine(
        self, small_artifact_root, tmp_path
    ):
        qpath = tmp_path / "quarantine.json"

        async def scenario():
            service = ScoringService(
                serve_config(small_artifact_root, quarantine_path=str(qpath))
            )
            await service.start()
            try:
                blob = base64.b64encode(b"not a trace at all").decode()
                r = await rpc(service.port, {"id": "bad", "payload_b64": blob})
                assert r["ok"] is False
                assert r["status"] == 422
                assert r["error"]["code"] in ("truncated", "bad_header")
                # the daemon is still alive and scoring
                r2 = await rpc(service.port, {"id": "ok", "payload_b64": trace_payload()})
                assert r2["ok"]
                assert service.stats.quarantined == 1
            finally:
                await service.shutdown()

        asyncio.run(scenario())
        doc = json.loads(qpath.read_text())
        assert doc["total"] == 1
        assert doc["entries"][0]["path"] == "request:bad"

    def test_malformed_json_line_keeps_connection_alive(self, small_artifact_root):
        async def scenario():
            service = ScoringService(serve_config(small_artifact_root))
            await service.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
                writer.write(b"this is not json\n")
                await writer.drain()
                bad = json.loads(await reader.readline())
                assert bad["status"] == 400 and bad["error"]["code"] == "bad_request"
                writer.write(
                    json.dumps({"id": "next", "payload_b64": trace_payload()}).encode() + b"\n"
                )
                await writer.drain()
                good = json.loads(await reader.readline())
                assert good["ok"]
                writer.close()
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_feature_width_mismatch_is_bad_request(self, small_artifact_root):
        async def scenario():
            service = ScoringService(serve_config(small_artifact_root))
            await service.start()
            try:
                r = await rpc(
                    service.port, {"id": "w", "payload_b64": trace_payload(n_features=5)}
                )
                assert r["status"] == 400
                assert "features" in r["error"]["message"]
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_probes(self, small_artifact_root):
        async def scenario():
            service = ScoringService(serve_config(small_artifact_root))
            await service.start()
            try:
                status, body = await http_probe(service.port, "/healthz")
                assert status == 200 and body["status"] == "ok"
                status, body = await http_probe(service.port, "/readyz")
                assert status == 200 and body["artifact"].startswith("v0001-")
                status, body = await http_probe(service.port, "/metricsz")
                assert status == 200
                assert body["queue_limit"] == service.config.max_queue
                assert "counters" in body
                status, _ = await http_probe(service.port, "/nope")
                assert status == 404
            finally:
                await service.shutdown()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# backpressure, deadlines, watchdog, drain
# ---------------------------------------------------------------------------


class _BlockingScore:
    """Wraps score_batch so the batcher wedges until released."""

    def __init__(self, scorer):
        self.release = threading.Event()
        self._inner = scorer.score_batch
        scorer.score_batch = self

    def __call__(self, batch):
        self.release.wait(timeout=30)
        return self._inner(batch)


class TestBackpressure:
    def test_full_queue_sheds_with_503(self, small_artifact_root):
        async def scenario():
            service = ScoringService(
                serve_config(small_artifact_root, max_queue=1, max_batch=1)
            )
            await service.start()
            block = _BlockingScore(service.scorer)
            try:
                payload = trace_payload()
                # r1 is dequeued by the batcher and wedged; r2 fills the
                # queue; r3 must be shed immediately with a structured 503.
                # Wait for each stage so the wrong request can't be the one
                # shed on a slow machine.
                t1 = asyncio.create_task(rpc(service.port, {"id": "r1", "payload_b64": payload}))
                for _ in range(200):
                    await asyncio.sleep(0.01)
                    if service._inflight == 1:
                        break
                assert service._inflight == 1, "batcher never dequeued r1"
                t2 = asyncio.create_task(rpc(service.port, {"id": "r2", "payload_b64": payload}))
                for _ in range(200):
                    await asyncio.sleep(0.01)
                    if service.queue.full():
                        break
                assert service.queue.full(), "r2 never filled the queue"
                shed = await rpc(service.port, {"id": "r3", "payload_b64": payload})
                assert shed["status"] == 503
                assert shed["error"]["code"] == "overloaded"
                assert service.stats.shed == 1
                block.release.set()
                r1, r2 = await asyncio.gather(t1, t2)
                assert r1["ok"] and r2["ok"]
            finally:
                block.release.set()
                await service.shutdown()

        asyncio.run(scenario())

    def test_expired_request_gets_504(self, small_artifact_root):
        async def scenario():
            service = ScoringService(
                serve_config(
                    small_artifact_root, max_queue=4, max_batch=1, request_timeout_s=0.2
                )
            )
            await service.start()
            block = _BlockingScore(service.scorer)
            try:
                payload = trace_payload()
                t1 = asyncio.create_task(rpc(service.port, {"id": "r1", "payload_b64": payload}))
                t2 = asyncio.create_task(rpc(service.port, {"id": "r2", "payload_b64": payload}))
                await asyncio.sleep(0.5)  # r2 expires while r1 wedges
                block.release.set()
                r1, r2 = await asyncio.gather(t1, t2)
                # one request rode the first (wedged) batch; the other sat in
                # the queue past its deadline and must be answered with a 504
                statuses = sorted((r1["status"], r2["status"]))
                assert 504 in statuses
                for r in (r1, r2):
                    if r["status"] == 504:
                        assert r["error"]["code"] == "deadline_exceeded"
                assert service.stats.expired >= 1
            finally:
                block.release.set()
                await service.shutdown()

        asyncio.run(scenario())

    def test_wedged_batch_answers_with_watchdog_error(self, small_artifact_root):
        async def scenario():
            service = ScoringService(
                serve_config(small_artifact_root, score_timeout_s=0.2, max_batch=1)
            )
            await service.start()
            block = _BlockingScore(service.scorer)
            try:
                r = await rpc(service.port, {"id": "wedge", "payload_b64": trace_payload()})
                assert r["status"] == 500
                assert r["error"]["code"] == "scoring_wedged"
                assert service.stats.score_timeouts == 1
                # daemon still alive: release and serve again
                block.release.set()
                r2 = await rpc(service.port, {"id": "after", "payload_b64": trace_payload()})
                assert r2["ok"]
            finally:
                block.release.set()
                await service.shutdown()

        asyncio.run(scenario())

    def test_watchdog_restarts_dead_batcher(self, small_artifact_root):
        async def scenario():
            service = ScoringService(serve_config(small_artifact_root))
            await service.start()
            try:
                service._batcher_task.cancel()
                for _ in range(100):
                    await asyncio.sleep(0.05)
                    if service.stats.watchdog_restarts:
                        break
                assert service.stats.watchdog_restarts >= 1
                r = await rpc(service.port, {"id": "alive", "payload_b64": trace_payload()})
                assert r["ok"]
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_scoring_bug_answers_structured_internal_error(self, small_artifact_root):
        async def scenario():
            service = ScoringService(serve_config(small_artifact_root))
            await service.start()

            def boom(batch):
                raise RuntimeError("synthetic scoring bug")

            service.scorer.score_batch = boom
            try:
                r = await rpc(service.port, {"id": "bug", "payload_b64": trace_payload()})
                assert r["ok"] is False and r["error"]["code"] == "internal"
                assert service.stats.score_errors == 1
            finally:
                await service.shutdown()

        asyncio.run(scenario())


class TestDrain:
    def test_sigterm_style_drain_answers_all_inflight(self, small_artifact_root):
        """Every request accepted before the drain begins is answered; no
        request is left hanging when shutdown returns."""

        async def scenario():
            service = ScoringService(
                serve_config(small_artifact_root, max_queue=16, max_batch=2)
            )
            await service.start()
            payload = trace_payload()
            tasks = [
                asyncio.create_task(rpc(service.port, {"id": f"d{i}", "payload_b64": payload}))
                for i in range(6)
            ]
            await asyncio.sleep(0.05)  # let requests land in the queue
            await service.shutdown()
            responses = await asyncio.gather(*tasks, return_exceptions=True)
            answered = [r for r in responses if isinstance(r, dict)]
            assert len(answered) == 6, f"lost {6 - len(answered)} in-flight requests"
            assert all(r["ok"] for r in answered)
            assert service.queue.empty() and service._inflight == 0
            assert service.stats.received == service.stats.answered

        asyncio.run(scenario())

    def test_requests_during_drain_get_503(self, small_artifact_root):
        async def scenario():
            service = ScoringService(serve_config(small_artifact_root))
            await service.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
            service.draining = True  # what request_stop/shutdown flips first
            writer.write(
                json.dumps({"id": "late", "payload_b64": trace_payload()}).encode() + b"\n"
            )
            await writer.drain()
            r = json.loads(await asyncio.wait_for(reader.readline(), timeout=5))
            assert r["status"] == 503
            assert r["error"]["message"] == "service is draining"
            writer.close()
            service.draining = False
            await service.shutdown()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# hot reload + fallback
# ---------------------------------------------------------------------------


class TestReload:
    def test_corrupt_swap_keeps_last_good_then_recovers(self, small_artifact_root, tmp_path):
        """Copy of the bench chaos sequence, in-process and deterministic."""

        async def scenario():
            store = ArtifactStore(small_artifact_root)
            service = ScoringService(
                serve_config(small_artifact_root, reload_poll_s=0.05)
            )
            await service.start()
            v1 = service.scorer.artifact.version
            try:
                # corrupt swap: dangling pointer
                (small_artifact_root / "CURRENT").write_text("v9999-deadbeef\n")
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    if service.stats.reload_failures:
                        break
                assert service.stats.reload_failures >= 1
                assert service.scorer.artifact.version == v1  # last good still serving
                r = await rpc(service.port, {"id": "mid", "payload_b64": trace_payload()})
                assert r["ok"] and r["artifact"] == v1
                # good swap: republish; daemon must pick it up
                loaded = store.load(v1)
                v2 = store.publish(loaded.models, loaded.normalizer, loaded.scales).version
                for _ in range(200):
                    await asyncio.sleep(0.02)
                    if service.scorer.artifact.version == v2:
                        break
                assert service.scorer.artifact.version == v2
                assert service.stats.reloads == 1
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_startup_falls_back_when_current_corrupt(self, tmp_path, small_artifact_root):
        async def scenario():
            # clone the store, then break CURRENT before start
            import shutil

            root = tmp_path / "art"
            shutil.copytree(small_artifact_root, root)
            (root / "CURRENT").write_text("v7777-00000000\n")
            newest_good = ArtifactStore(root).versions()[-1]
            service = ScoringService(serve_config(root))
            await service.start()
            try:
                assert service.scorer.artifact.version == newest_good
                r = await rpc(service.port, {"id": "x", "payload_b64": trace_payload()})
                assert r["ok"]
            finally:
                await service.shutdown()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# golden parity: served verdicts == batch verdicts, bit for bit
# ---------------------------------------------------------------------------


class TestGoldenParity:
    @pytest.fixture(scope="class")
    def golden_artifact(self, tmp_path_factory):
        golden = Path(__file__).resolve().parent / "fixtures" / "golden"
        if not sorted(golden.glob("*.pkl")):
            pytest.skip("golden fixtures not generated in this checkout")
        out = tmp_path_factory.mktemp("golden-serve")
        root = out / "artifact"
        run_pipeline(
            PipelineConfig(
                trace_dir=str(golden),
                out_dir=str(out / "train"),
                artifact_root=str(root),
                **GOLDEN_CONFIG,
            )
        )
        return golden, root

    def test_served_verdicts_bit_identical_to_batch(self, golden_artifact):
        golden, root = golden_artifact
        paths = sorted(golden.glob("*.pkl"))
        loaded = ArtifactStore(root).load()

        # batch side: every golden trace stacked into one matrix
        traces = [decode_trace(p.read_bytes(), path=str(p))[0] for p in paths]
        dataset = build_dataset(traces)
        margins, verdicts = loaded.score_traces(
            dataset.X, dataset.groups, len(dataset.traces)
        )
        sums = np.bincount(dataset.groups, weights=margins, minlength=len(dataset.traces))
        counts = np.bincount(dataset.groups, minlength=len(dataset.traces))
        batch_margin = sums / counts

        async def scenario():
            service = ScoringService(serve_config(root, max_batch=3, batch_window_ms=5.0))
            await service.start()
            try:
                # fire all requests concurrently so the daemon coalesces them
                # into micro-batches of mixed traces — parity must still hold
                docs = [
                    {"id": p.name, "payload_b64": base64.b64encode(p.read_bytes()).decode()}
                    for p in paths
                ]
                return await asyncio.gather(*(rpc(service.port, d) for d in docs))
            finally:
                await service.shutdown()

        responses = asyncio.run(scenario())
        by_id = {r["id"]: r for r in responses}
        assert all(r["ok"] for r in responses)
        for t, path in enumerate(paths):
            served = by_id[path.name]
            assert served["verdict"] == int(verdicts[t]), path.name
            assert served["margin"] == float(batch_margin[t]), path.name
