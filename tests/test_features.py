"""Feature layer: dataset assembly, NaN/Inf sanitization, z-score round-trip
of persisted statistics."""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_trace
from repro.errors import FeatureError
from repro.features import Normalizer, build_dataset
from repro.features.normalize import Z_CLIP


def test_build_dataset_stacks_intervals_with_groups():
    traces = [
        make_trace(program="a", label=-1, n_intervals=3, seed=1),
        make_trace(program="b", label=1, attack_class="x", n_intervals=5, seed=2),
    ]
    ds = build_dataset(traces)
    assert ds.n_samples == 8
    assert list(np.unique(ds.groups)) == [0, 1]
    assert (ds.y[ds.groups == 0] == -1).all()
    assert (ds.y[ds.groups == 1] == 1).all()
    assert ds.trace_labels().tolist() == [-1, 1]


def test_build_dataset_skips_foreign_width():
    traces = [
        make_trace(program="a", n_features=12, seed=1),
        make_trace(program="b", n_features=12, seed=2),
        make_trace(program="weird", n_features=7, seed=3),
    ]
    ds = build_dataset(traces)
    assert len(ds.traces) == 2
    assert ds.skipped == [("weird", "feature_width_7_vs_12")]


def test_build_dataset_empty_is_typed():
    with pytest.raises(FeatureError):
        build_dataset([])


def test_normalizer_sanitizes_nan_inf():
    X = np.array([[1.0, 10.0], [3.0, np.nan], [5.0, np.inf], [7.0, -np.inf]])
    norm = Normalizer(log_scale=False).fit(X)
    Z = norm.transform(X)
    assert np.isfinite(Z).all()
    assert (np.abs(Z) <= Z_CLIP).all()
    # non-finite cells impute to the fitted median -> identical z-scores
    assert Z[1, 1] == Z[2, 1] == Z[3, 1]


def test_normalizer_zero_variance_column_is_safe():
    X = np.array([[5.0, 1.0], [5.0, 2.0], [5.0, 3.0]])
    Z = Normalizer(log_scale=False).fit(X).transform(X)
    assert np.isfinite(Z).all()
    assert (Z[:, 0] == 0).all()  # constant column -> 0, not inf


def test_normalizer_save_load_round_trip(tmp_path):
    rng = np.random.default_rng(0)
    X = rng.lognormal(mean=3.0, sigma=2.0, size=(50, 8))
    X[4, 2] = np.nan
    norm = Normalizer().fit(X)
    path = tmp_path / "stats.json"
    norm.save(path)
    reloaded = Normalizer.load(path)
    assert reloaded.log_scale == norm.log_scale
    np.testing.assert_array_equal(norm.transform(X), reloaded.transform(X))


def test_normalizer_load_rejects_garbage(tmp_path):
    path = tmp_path / "stats.json"
    path.write_text("{not json")
    with pytest.raises(FeatureError):
        Normalizer.load(path)
    path.write_text('{"version": 99}')
    with pytest.raises(FeatureError):
        Normalizer.load(path)


def test_normalizer_rejects_width_mismatch():
    norm = Normalizer(log_scale=False).fit(np.ones((4, 3)))
    with pytest.raises(FeatureError):
        norm.transform(np.ones((4, 5)))


def test_unfitted_transform_is_typed():
    with pytest.raises(FeatureError):
        Normalizer().transform(np.ones((2, 2)))


def test_log_scale_tames_heavy_tails():
    """Counters spanning orders of magnitude stay informative after scaling."""
    X = np.array([[1.0], [1e3], [1e6], [1e9]])
    Z = Normalizer(log_scale=True).fit(X).transform(X)
    # without log scaling three of four samples would collapse near the mean;
    # with it the spacing is roughly even
    gaps = np.diff(Z.ravel())
    assert gaps.min() > 0.3 * gaps.max()
