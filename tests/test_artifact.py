"""Versioned artifact store: publish/load round trip, integrity refusal,
last-good fallback, and the hardened ``HashedPerceptron.load`` validation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ArtifactError, ModelError
from repro.features import Normalizer
from repro.model import ArtifactStore, HashedPerceptron, ensemble_margins, margin_scales

N_FEATURES = 12


@pytest.fixture()
def fitted():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(60, N_FEATURES))
    y = np.where(rng.random(60) > 0.5, 1, -1)
    norm = Normalizer().fit(X)
    Z = norm.transform(X)
    models = []
    for seed in (1, 2, 3):
        m = HashedPerceptron(N_FEATURES, seed=seed, theta=5.0)
        m.fit(Z, y, epochs=3)
        models.append(m)
    return models, norm, margin_scales(models, Z), Z


def publish(store, fitted, **meta):
    models, norm, scales, _ = fitted
    return store.publish(models, norm, scales, meta=meta)


class TestPublishLoad:
    def test_round_trip_scores_identically(self, tmp_path, fitted):
        models, norm, scales, _ = fitted
        store = ArtifactStore(tmp_path / "art")
        result = publish(store, fitted)
        loaded = store.load()
        assert loaded.version == result.version
        assert loaded.scales == scales
        # score_rows applies the persisted normalizer, so feed raw X space
        rng = np.random.default_rng(9)
        X = rng.normal(size=(20, N_FEATURES))
        direct = ensemble_margins(models, norm.transform(X), scales=scales)
        assert np.array_equal(loaded.score_rows(X), direct)

    def test_current_pointer_and_versions(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        v1 = publish(store, fitted).version
        v2 = publish(store, fitted).version
        assert store.versions() == [v1, v2]
        assert store.current() == v2
        assert v1.startswith("v0001-") and v2.startswith("v0002-")

    def test_empty_store_refuses(self, tmp_path):
        store = ArtifactStore(tmp_path / "nothing")
        with pytest.raises(ArtifactError):
            store.load()
        with pytest.raises(ArtifactError):
            store.load_with_fallback()

    def test_no_tmp_stager_left_behind(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        publish(store, fitted)
        leftovers = [p.name for p in (tmp_path / "art").iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_mismatched_scales_refused(self, tmp_path, fitted):
        models, norm, scales, _ = fitted
        store = ArtifactStore(tmp_path / "art")
        with pytest.raises(ArtifactError):
            store.publish(models, norm, scales[:-1])


class TestIntegrity:
    def test_checksum_mismatch_refused(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        version = publish(store, fitted).version
        member = tmp_path / "art" / version / "members" / "member_0.npz"
        member.write_bytes(member.read_bytes()[:-7] + b"XXXXXXX")
        with pytest.raises(ArtifactError, match="checksum"):
            store.load()

    def test_missing_file_refused(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        version = publish(store, fitted).version
        (tmp_path / "art" / version / "normalizer.json").unlink()
        with pytest.raises(ArtifactError, match="missing"):
            store.load()

    def test_version_mismatch_refused(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        version = publish(store, fitted).version
        manifest_path = tmp_path / "art" / version / "manifest.json"
        doc = json.loads(manifest_path.read_text())
        doc["artifact_version"] = 999
        manifest_path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError, match="artifact version"):
            store.load()

    def test_garbage_manifest_refused(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        version = publish(store, fitted).version
        (tmp_path / "art" / version / "manifest.json").write_text("{not json")
        with pytest.raises(ArtifactError, match="JSON"):
            store.load()

    def test_dangling_current_pointer_refused(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        publish(store, fitted)
        (tmp_path / "art" / "CURRENT").write_text("v9999-deadbeef\n")
        with pytest.raises(ArtifactError):
            store.load()


class TestFallback:
    def test_corrupt_current_falls_back_to_last_good(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        v1 = publish(store, fitted).version
        v2 = publish(store, fitted).version
        member = tmp_path / "art" / v2 / "members" / "member_0.npz"
        member.write_bytes(b"not a model at all")
        loaded = store.load_with_fallback()
        assert loaded.version == v1

    def test_dangling_pointer_falls_back(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        v1 = publish(store, fitted).version
        (tmp_path / "art" / "CURRENT").write_text("v9999-cafebabe\n")
        assert store.load_with_fallback().version == v1

    def test_all_versions_bad_raises(self, tmp_path, fitted):
        store = ArtifactStore(tmp_path / "art")
        v1 = publish(store, fitted).version
        (tmp_path / "art" / v1 / "manifest.json").write_text("{}")
        with pytest.raises(ArtifactError, match="no loadable artifact"):
            store.load_with_fallback()


class TestHardenedModelLoad:
    """Satellite: corrupt/truncated model files raise ModelError, never raw
    pickle/zip/KeyError."""

    def _saved(self, tmp_path):
        model = HashedPerceptron(N_FEATURES, seed=5)
        path = tmp_path / "model.npz"
        model.save(path)
        return model, path

    def test_round_trip(self, tmp_path):
        model, path = self._saved(tmp_path)
        loaded = HashedPerceptron.load(path)
        assert np.array_equal(loaded.weights, model.weights)
        assert np.array_equal(loaded._salts, model._salts)

    def test_truncated_file(self, tmp_path):
        _, path = self._saved(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(ModelError):
            HashedPerceptron.load(path)

    def test_not_a_zip_at_all(self, tmp_path):
        path = tmp_path / "model.npz"
        path.write_bytes(b"\x00\x01\x02 garbage")
        with pytest.raises(ModelError):
            HashedPerceptron.load(path)

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "model.npz"
        np.savez(path, version=1, weights=np.zeros((2, 2)))
        with pytest.raises(ModelError, match="missing keys"):
            HashedPerceptron.load(path)

    def test_wrong_version(self, tmp_path):
        model, path = self._saved(tmp_path)
        with np.load(path) as doc:
            fields = {k: doc[k] for k in doc.files}
        fields["version"] = np.int64(999)
        np.savez(path, **fields)
        with pytest.raises(ModelError, match="version"):
            HashedPerceptron.load(path)

    def test_weights_shape_mismatch(self, tmp_path):
        model, path = self._saved(tmp_path)
        with np.load(path) as doc:
            fields = {k: doc[k] for k in doc.files}
        fields["weights"] = fields["weights"][:, :100]
        np.savez(path, **fields)
        with pytest.raises(ModelError, match="weights shape"):
            HashedPerceptron.load(path)

    def test_salts_shape_mismatch(self, tmp_path):
        model, path = self._saved(tmp_path)
        with np.load(path) as doc:
            fields = {k: doc[k] for k in doc.files}
        fields["salts"] = fields["salts"][:-2]
        np.savez(path, **fields)
        with pytest.raises(ModelError, match="salts shape"):
            HashedPerceptron.load(path)

    def test_non_integral_weights(self, tmp_path):
        model, path = self._saved(tmp_path)
        with np.load(path) as doc:
            fields = {k: doc[k] for k in doc.files}
        fields["weights"] = fields["weights"].astype(np.float64)
        np.savez(path, **fields)
        with pytest.raises(ModelError, match="not integral"):
            HashedPerceptron.load(path)

    def test_bad_config_length(self, tmp_path):
        model, path = self._saved(tmp_path)
        with np.load(path) as doc:
            fields = {k: doc[k] for k in doc.files}
        fields["config"] = fields["config"][:4]
        np.savez(path, **fields)
        with pytest.raises(ModelError, match="config"):
            HashedPerceptron.load(path)

    def test_implausible_table_bits(self, tmp_path):
        model, path = self._saved(tmp_path)
        with np.load(path) as doc:
            fields = {k: doc[k] for k in doc.files}
        config = fields["config"].copy()
        config[2] = 55  # table_bits: would allocate 2**55 weights
        fields["config"] = config
        np.savez(path, **fields)
        with pytest.raises(ModelError, match="table_bits"):
            HashedPerceptron.load(path)

    def test_non_finite_theta(self, tmp_path):
        model, path = self._saved(tmp_path)
        with np.load(path) as doc:
            fields = {k: doc[k] for k in doc.files}
        fields["theta"] = np.float64("nan")
        np.savez(path, **fields)
        with pytest.raises(ModelError, match="theta"):
            HashedPerceptron.load(path)


class TestPinnedScales:
    def test_scaled_margins_are_batch_independent(self, fitted):
        models, norm, scales, Z = fitted
        whole = ensemble_margins(models, Z, scales=scales)
        # scoring any sub-batch alone must reproduce the same per-sample
        # margins bit for bit — the property serving-side coalescing needs
        for start, stop in ((0, 7), (7, 33), (33, 60)):
            part = ensemble_margins(models, Z[start:stop], scales=scales)
            assert np.array_equal(part, whole[start:stop])

    def test_default_margins_are_batch_dependent(self, fitted):
        models, _, _, Z = fitted
        whole = ensemble_margins(models, Z)
        part = ensemble_margins(models, Z[:7])
        assert not np.array_equal(part, whole[:7])

    def test_scales_length_checked(self, fitted):
        models, _, scales, Z = fitted
        with pytest.raises(ModelError, match="margin scales"):
            ensemble_margins(models, Z, scales=scales[:-1])
