"""Property suite pinning the synthetic generator's semantics.

Four contracts, checked over the family-spec space (builtin profiles AND
randomly-composed config-driven specs):

1. **Codec round-trip**: every generated trace survives ``encode_trace`` ->
   ``decode_trace`` bit-for-bit on the *clean* path — generated corpora flow
   through ingest/cache/features exactly like captured ones.
2. **Seed determinism**: payload bytes are a pure function of
   ``(spec, corpus seed, index)``; distinct indices draw distinct streams.
3. **Spec-bound respect**: interval counts, burst accounting, and value
   ranges land inside the spec's closed bounds; counters never go negative
   and never go non-finite.
4. **Stream stability**: payload sha256 for a fixed ``(spec, seed, index)``
   matches digests recorded when GEN_VERSION was minted — the generator may
   not change its output without bumping GEN_VERSION and regenerating the
   golden synthetic fixtures.

Runs derandomized so CI is stable; bump ``max_examples`` locally to dig.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import GenSpecError  # noqa: E402
from repro.gen import (  # noqa: E402
    BUILTIN_FAMILIES,
    GEN_VERSION,
    STAT_NAMES,
    FamilySpec,
    encode_synthetic,
    synthesize_trace,
    trace_key,
)
from repro.sim.trace import decode_trace, encode_trace  # noqa: E402

_seeds = st.integers(min_value=0, max_value=2**31 - 1)
_indices = st.integers(min_value=0, max_value=10_000)


@st.composite
def family_specs(draw) -> FamilySpec:
    """Builtin profiles plus randomly-composed config-driven specs."""
    if draw(st.booleans()):
        return draw(st.sampled_from(BUILTIN_FAMILIES))
    lo = draw(st.integers(min_value=1, max_value=12))
    hi = draw(st.integers(min_value=lo, max_value=lo + 24))
    b_lo = draw(st.floats(min_value=0.0, max_value=0.8))
    b_hi = draw(st.floats(min_value=b_lo, max_value=1.0))
    a_lo = draw(st.floats(min_value=0.0, max_value=2.0))
    a_hi = draw(st.floats(min_value=a_lo, max_value=3.0))
    cols = draw(st.lists(st.sampled_from(STAT_NAMES), max_size=6, unique=True))
    weights = draw(
        st.lists(
            st.floats(min_value=-2.0, max_value=10.0),
            min_size=len(cols),
            max_size=len(cols),
        )
    )
    return FamilySpec(
        name=draw(st.sampled_from(("custom_alpha", "custom_beta", "custom_gamma"))),
        label=draw(st.sampled_from((-1, 1))),
        intervals=(lo, hi),
        burst_frac=(b_lo, b_hi),
        amplitude=(a_lo, a_hi),
        signature=dict(zip(cols, weights)),
        noise=draw(st.floats(min_value=0.1, max_value=3.0)),
    )


@given(spec=family_specs(), seed=_seeds, index=_indices)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_generated_traces_round_trip_codec(spec, seed, index):
    trace = synthesize_trace(spec, seed, index)
    decoded, report = decode_trace(encode_trace(trace))
    assert report.mode == "clean" and not report.degraded
    assert decoded == trace
    assert decoded.stat_names == list(STAT_NAMES)
    assert decoded.attack_class == (spec.name if spec.is_attack else None)


@given(spec=family_specs(), seed=_seeds, index=_indices)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_generation_is_seed_deterministic(spec, seed, index):
    payload_a, digest_a = encode_synthetic(spec, seed, index)
    payload_b, digest_b = encode_synthetic(spec, seed, index)
    assert payload_a == payload_b and digest_a == digest_b
    # a neighbouring index keys a distinct stream, hence distinct bytes
    _, digest_next = encode_synthetic(spec, seed, index + 1)
    assert digest_next != digest_a
    assert trace_key(seed, spec.name, index) != trace_key(seed, spec.name, index + 1)


@given(spec=family_specs(), seed=_seeds, index=_indices)
@settings(max_examples=60, deadline=None, derandomize=True)
def test_generated_traces_respect_spec_bounds(spec, seed, index):
    trace = synthesize_trace(spec, seed, index)
    lo, hi = spec.intervals
    assert lo <= trace.n_intervals <= hi
    assert trace.n_features == len(STAT_NAMES)
    assert np.isfinite(trace.rows).all()
    assert (trace.rows >= 0.0).all(), "hardware counters cannot be negative"
    assert trace.label == spec.label
    burst = trace.meta["burst_intervals"]
    assert 0 <= burst <= trace.n_intervals
    if spec.burst_frac[1] == 0.0:
        assert burst == 0
    assert trace.meta["gen_version"] == GEN_VERSION
    assert trace.meta["seed"] == seed and trace.meta["index"] == index


# Recorded at GEN_VERSION=1 mint time.  A mismatch means the synthesis math
# or trace layout changed: bump GEN_VERSION, regenerate golden_synth, and
# re-record — silent drift is exactly what this pin exists to catch.
_PINNED_DIGESTS = {
    ("spectre_v1", 7, 0): "d833ab5bfa6def52c8a67eae2b4c413885b1d7ea1df718a1cb283813c547dd19",
    ("flush_reload", 7, 3): "f1f3c5b0718c82a285e2f3eda69c3f39b3ca7350a63c5ea3e6c795548430779c",
    ("evasive_spectre_v1", 11, 1): "7aaa130a44704538bb11365a86fd2510b559cfdf1cac1dea759b5b1b93c9035b",
    ("benign_stream", 7, 2): "ef53b629b38224988b7a4220818f67dd0af282e6a364edb71fd65cd6f526f0e0",
}


@pytest.mark.parametrize("key,expected", sorted(_PINNED_DIGESTS.items()))
def test_payload_sha256_is_pinned(key, expected):
    family, seed, index = key
    spec = next(s for s in BUILTIN_FAMILIES if s.name == family)
    _, digest = encode_synthetic(spec, seed, index)
    assert digest == expected, (
        f"payload stream for {key} drifted (GEN_VERSION={GEN_VERSION}); "
        "bump GEN_VERSION and regenerate pinned fixtures if intentional"
    )


def test_spec_validation_rejects_out_of_bounds():
    with pytest.raises(GenSpecError):
        FamilySpec(name="bad", label=0)
    with pytest.raises(GenSpecError):
        FamilySpec(name="bad", label=1, intervals=(5, 2))
    with pytest.raises(GenSpecError):
        FamilySpec(name="bad", label=1, burst_frac=(0.2, 1.4))
    with pytest.raises(GenSpecError):
        FamilySpec(name="bad", label=1, signature={"not_a_stat": 1.0})
    with pytest.raises(GenSpecError):
        FamilySpec.from_dict({"name": "bad", "label": 1, "bogus_field": 3})
