"""Telemetry configuration must be idempotent -- including across the
re-import scenario pytest can trigger -- and resettable for tests."""

from __future__ import annotations

import logging

from repro import telemetry


def _tagged_handlers() -> list[logging.Handler]:
    root = logging.getLogger("repro")
    return [h for h in root.handlers if getattr(h, telemetry._HANDLER_TAG, False)]


def teardown_module() -> None:
    # leave the process configured the way every other test expects
    telemetry.reset_logging()
    telemetry.get_logger("repro")


def test_get_logger_configures_exactly_once():
    telemetry.reset_logging()
    for name in ("repro.a", "repro.b", "other", "repro.a"):
        telemetry.get_logger(name)
    assert len(_tagged_handlers()) == 1


def test_reimport_with_stale_global_does_not_double_configure():
    """A re-imported module copy starts with ``_CONFIGURED = False`` while the
    process-wide logging tree is already configured; configuration must detect
    the installed handler instead of trusting the module global."""
    telemetry.reset_logging()
    telemetry.get_logger("repro.first")
    assert len(_tagged_handlers()) == 1
    telemetry._CONFIGURED = False  # simulate the fresh module copy
    telemetry.get_logger("repro.second")
    assert len(_tagged_handlers()) == 1


def test_reset_logging_removes_handler_and_allows_reconfigure():
    telemetry.get_logger("repro.x")
    telemetry.reset_logging()
    assert _tagged_handlers() == []
    assert telemetry._CONFIGURED is False
    telemetry.get_logger("repro.x")
    assert len(_tagged_handlers()) == 1


def test_reset_logging_is_idempotent():
    telemetry.reset_logging()
    telemetry.reset_logging()
    assert _tagged_handlers() == []


def test_logger_names_join_the_repro_hierarchy():
    telemetry.reset_logging()
    assert telemetry.get_logger("repro.ingest").name == "repro.ingest"
    assert telemetry.get_logger("ingest").name == "repro.ingest"


def test_handler_is_not_duplicated_in_captured_output(capsys):
    telemetry.reset_logging()
    logger = telemetry.get_logger("repro.dup_check")
    telemetry.get_logger("repro.dup_check")  # second configure attempt
    logger.info(telemetry.fmt_event("dup.check", n=1))
    err = capsys.readouterr().err
    assert err.count("event=dup.check") == 1


def test_fmt_event_field_order_and_quoting():
    line = telemetry.fmt_event("x.y", b=2, a="has space")
    assert line == "event=x.y b=2 a='has space'"


# -- span ------------------------------------------------------------------


def test_span_logs_start_and_done_with_elapsed(capsys):
    telemetry.reset_logging()
    logger = telemetry.get_logger("repro.span_check")
    with telemetry.span(logger, "stage", items=3):
        pass
    err = capsys.readouterr().err
    assert "event=stage.start items=3" in err
    assert "event=stage.done elapsed=" in err
    assert "items=3" in err.splitlines()[-1]


def test_span_merges_yielded_fields_into_done_event(capsys):
    telemetry.reset_logging()
    logger = telemetry.get_logger("repro.span_check")
    with telemetry.span(logger, "stage") as extra:
        extra["hits"] = 5
    err = capsys.readouterr().err
    done = [line for line in err.splitlines() if "event=stage.done" in line]
    assert len(done) == 1
    assert "hits=5" in done[0]


def test_span_logs_error_with_taxonomy_code_and_reraises(capsys):
    from repro.errors import IngestError

    telemetry.reset_logging()
    logger = telemetry.get_logger("repro.span_check")
    try:
        with telemetry.span(logger, "stage"):
            raise IngestError("boom")
    except IngestError:
        pass
    else:  # pragma: no cover - the span must re-raise
        raise AssertionError("span swallowed the exception")
    err = capsys.readouterr().err
    error_lines = [line for line in err.splitlines() if "event=stage.error" in line]
    assert len(error_lines) == 1
    assert "error='IngestError: boom'" in error_lines[0]
    assert "code=ingest_error" in error_lines[0]
    assert "event=stage.done" not in err


def test_span_error_for_plain_exception_uses_dash_code(capsys):
    telemetry.reset_logging()
    logger = telemetry.get_logger("repro.span_check")
    try:
        with telemetry.span(logger, "stage"):
            raise ValueError("plain")
    except ValueError:
        pass
    err = capsys.readouterr().err
    assert "code=-" in err
