"""Telemetry configuration must be idempotent -- including across the
re-import scenario pytest can trigger -- and resettable for tests."""

from __future__ import annotations

import logging

from repro import telemetry


def _tagged_handlers() -> list[logging.Handler]:
    root = logging.getLogger("repro")
    return [h for h in root.handlers if getattr(h, telemetry._HANDLER_TAG, False)]


def teardown_module() -> None:
    # leave the process configured the way every other test expects
    telemetry.reset_logging()
    telemetry.get_logger("repro")


def test_get_logger_configures_exactly_once():
    telemetry.reset_logging()
    for name in ("repro.a", "repro.b", "other", "repro.a"):
        telemetry.get_logger(name)
    assert len(_tagged_handlers()) == 1


def test_reimport_with_stale_global_does_not_double_configure():
    """A re-imported module copy starts with ``_CONFIGURED = False`` while the
    process-wide logging tree is already configured; configuration must detect
    the installed handler instead of trusting the module global."""
    telemetry.reset_logging()
    telemetry.get_logger("repro.first")
    assert len(_tagged_handlers()) == 1
    telemetry._CONFIGURED = False  # simulate the fresh module copy
    telemetry.get_logger("repro.second")
    assert len(_tagged_handlers()) == 1


def test_reset_logging_removes_handler_and_allows_reconfigure():
    telemetry.get_logger("repro.x")
    telemetry.reset_logging()
    assert _tagged_handlers() == []
    assert telemetry._CONFIGURED is False
    telemetry.get_logger("repro.x")
    assert len(_tagged_handlers()) == 1


def test_reset_logging_is_idempotent():
    telemetry.reset_logging()
    telemetry.reset_logging()
    assert _tagged_handlers() == []


def test_logger_names_join_the_repro_hierarchy():
    telemetry.reset_logging()
    assert telemetry.get_logger("repro.ingest").name == "repro.ingest"
    assert telemetry.get_logger("ingest").name == "repro.ingest"


def test_handler_is_not_duplicated_in_captured_output(capsys):
    telemetry.reset_logging()
    logger = telemetry.get_logger("repro.dup_check")
    telemetry.get_logger("repro.dup_check")  # second configure attempt
    logger.info(telemetry.fmt_event("dup.check", n=1))
    err = capsys.readouterr().err
    assert err.count("event=dup.check") == 1


def test_fmt_event_field_order_and_quoting():
    line = telemetry.fmt_event("x.y", b=2, a="has space")
    assert line == "event=x.y b=2 a='has space'"
