"""Unit contract for the windowed drift monitor.

The monitor is the trigger for retrains and rollbacks, so its semantics are
pinned tightly: the first window freezes the reference and never fires, a
stable stream stays quiet, each threshold (PSI, margin shift, accuracy
floor, per-family FPR) fires alone and is named in the reasons, cooldown
turns a long degradation into one verdict instead of one per window, the
rollback signal rides the lower floor, and quarantine records are complete
JSON documents an operator can triage offline.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.drift import (
    DRIFT_RECORD_VERSION,
    DriftConfig,
    DriftMonitor,
    DriftReport,
    psi,
)
from repro.errors import DriftError


def feed_window(
    monitor: DriftMonitor,
    margins,
    *,
    labels=None,
    verdicts=None,
    families=None,
) -> DriftReport | None:
    """Push one value per margin and return the (single) completed report."""
    n = len(margins)
    labels = labels if labels is not None else [None] * n
    verdicts = verdicts if verdicts is not None else [1 if m > 0 else -1 for m in margins]
    families = families if families is not None else [None] * n
    report = None
    for m, label, verdict, family in zip(margins, labels, verdicts, families):
        monitor.observe(float(m), int(verdict), label=label, family=family)
        out = monitor.maybe_evaluate()
        if out is not None:
            assert report is None, "window evaluated twice"
            report = out
    return report


def margins_like(mean: float, n: int = 50, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(loc=mean, scale=1.0, size=n)


def quiet_config(**overrides) -> DriftConfig:
    # psi_threshold sits above PSI sampling noise for 50-sample windows with
    # 10 bins (~ (bins-1)*2/window = 0.36) but far below a real shift (>5)
    base = dict(window=50, min_feedback=10, cooldown_windows=2, psi_threshold=0.6)
    base.update(overrides)
    return DriftConfig(**base)


class TestConfig:
    def test_defaults_validate(self):
        DriftConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": -1},
            {"min_feedback": 0},
            {"accuracy_floor": 0.4, "rollback_floor": 0.6},
            {"accuracy_floor": 1.5},
            {"psi_threshold": 0.0},
            {"margin_sigma": -1.0},
            {"psi_bins": 1},
        ],
    )
    def test_rejects_bad_thresholds(self, kwargs):
        with pytest.raises(DriftError):
            DriftConfig(**kwargs).validate()


class TestPsi:
    def test_identical_distributions_are_zero(self):
        p = np.array([0.1, 0.2, 0.3, 0.4])
        assert psi(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_disjoint_distributions_are_large(self):
        a = np.array([1.0, 0.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, 0.0, 1.0])
        assert psi(a, b) > 5.0

    def test_symmetric_and_finite_with_empty_bins(self):
        a = np.array([0.5, 0.5, 0.0])
        b = np.array([0.0, 0.5, 0.5])
        assert np.isfinite(psi(a, b))
        assert psi(a, b) == pytest.approx(psi(b, a))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DriftError, match="shapes"):
            psi(np.ones(3) / 3, np.ones(4) / 4)


class TestWindows:
    def test_first_window_freezes_reference_without_verdict(self):
        monitor = DriftMonitor(quiet_config())
        report = feed_window(monitor, margins_like(0.0))
        assert report is not None
        assert report.drifted is False and report.rollback is False
        assert report.psi is None  # nothing to compare against yet
        assert monitor.reference is not None
        assert monitor.reference.mean == pytest.approx(report.margin_mean)
        assert monitor.drift_verdicts == 0

    def test_stable_stream_stays_quiet(self):
        monitor = DriftMonitor(quiet_config())
        feed_window(monitor, margins_like(0.0, seed=1))
        for seed in (2, 3, 4):
            report = feed_window(monitor, margins_like(0.0, seed=seed))
            assert report.drifted is False
            assert report.reasons == []
        assert monitor.windows_evaluated == 4
        assert monitor.drift_verdicts == 0

    def test_margin_distribution_shift_fires_psi(self):
        monitor = DriftMonitor(quiet_config())
        feed_window(monitor, margins_like(0.0, seed=1))
        report = feed_window(monitor, margins_like(6.0, seed=2))
        assert report.drifted is True
        assert any(r.startswith("psi=") for r in report.reasons)
        assert any(r.startswith("margin_shift=") for r in report.reasons)
        assert monitor.drift_verdicts == 1

    def test_partial_window_returns_none(self):
        monitor = DriftMonitor(quiet_config())
        for m in margins_like(0.0, n=49):
            monitor.observe(float(m), 1)
            assert monitor.maybe_evaluate() is None
        assert monitor.window_fill() == 49

    def test_window_zero_disables_monitor(self):
        monitor = DriftMonitor(quiet_config(window=0))
        monitor.observe(1.0, 1, label=1)
        assert monitor.maybe_evaluate() is None
        assert monitor.scored_total == 0


class TestAccuracyVerdicts:
    def _labeled_window(self, monitor, accuracy: float, seed: int = 0):
        """A full window whose labeled feedback has the given accuracy and
        whose margins match the reference distribution (isolates the
        accuracy verdict from the PSI one)."""
        margins = margins_like(0.0, seed=seed)
        n = len(margins)
        wrong = int(round(n * (1.0 - accuracy)))
        verdicts = [1] * n
        labels = [-1] * wrong + [1] * (n - wrong)
        return feed_window(monitor, margins, labels=labels, verdicts=verdicts)

    def test_accuracy_floor_fires_without_rollback(self):
        monitor = DriftMonitor(quiet_config(accuracy_floor=0.75, rollback_floor=0.4))
        self._labeled_window(monitor, 1.0, seed=1)
        report = self._labeled_window(monitor, 0.6, seed=1)
        assert report.drifted is True
        assert report.rollback is False
        assert any(r.startswith("accuracy=") for r in report.reasons)
        assert report.rolling_accuracy == pytest.approx(0.6)

    def test_rollback_floor_raises_rollback_signal(self):
        monitor = DriftMonitor(quiet_config(accuracy_floor=0.75, rollback_floor=0.5))
        self._labeled_window(monitor, 1.0, seed=1)
        report = self._labeled_window(monitor, 0.2, seed=1)
        assert report.drifted is True and report.rollback is True
        assert monitor.rollback_signals == 1

    def test_sparse_labels_never_fire_accuracy(self):
        monitor = DriftMonitor(quiet_config(min_feedback=10))
        feed_window(monitor, margins_like(0.0, seed=1))
        # 5 labeled events, all wrong — below min_feedback, so no verdict
        margins = margins_like(0.0, seed=2)
        labels = [-1] * 5 + [None] * (len(margins) - 5)
        report = feed_window(monitor, margins, labels=labels, verdicts=[1] * len(margins))
        assert report.rolling_accuracy is None
        assert report.drifted is False

    def test_benign_family_fpr_attributed(self):
        monitor = DriftMonitor(quiet_config(family_fpr=0.5, min_family=8))
        feed_window(monitor, margins_like(0.0, seed=1))
        margins = margins_like(0.0, seed=2)
        n = len(margins)
        # one benign workload suddenly reads as attack; everything else fine
        labels = [-1] * 10 + [1] * (n - 10)
        verdicts = [1] * 10 + [1] * (n - 10)
        families = ["ptr_chase"] * 10 + ["spectre_v1"] * (n - 10)
        report = feed_window(monitor, margins, labels=labels, verdicts=verdicts, families=families)
        assert any(r.startswith("family_fpr:ptr_chase") for r in report.reasons)
        assert report.per_family["ptr_chase"]["false_positive_rate"] == 1.0
        assert report.per_family["ptr_chase"]["kind"] == "benign"
        assert report.per_family["spectre_v1"]["miss_rate"] == 0.0

    def test_family_below_min_labels_is_reported_not_fired(self):
        monitor = DriftMonitor(quiet_config(family_fpr=0.5, min_family=8))
        feed_window(monitor, margins_like(0.0, seed=1))
        margins = margins_like(0.0, seed=2)
        n = len(margins)
        labels = [-1] * 3 + [1] * (n - 3)
        families = ["rare"] * 3 + ["spectre_v1"] * (n - 3)
        report = feed_window(monitor, margins, labels=labels, verdicts=[1] * n, families=families)
        assert "rare" in report.per_family
        assert not any("family_fpr" in r for r in report.reasons)


class TestCooldownAndReset:
    def test_cooldown_suppresses_then_rearms(self):
        monitor = DriftMonitor(quiet_config(cooldown_windows=2))
        feed_window(monitor, margins_like(0.0, seed=1))
        assert feed_window(monitor, margins_like(6.0, seed=2)).drifted is True
        # two cooldown windows: reasons still recorded, verdict suppressed
        for seed in (3, 4):
            report = feed_window(monitor, margins_like(6.0, seed=seed))
            assert report.reasons and report.drifted is False
        # cooldown spent: the still-shifted stream fires again
        assert feed_window(monitor, margins_like(6.0, seed=5)).drifted is True
        assert monitor.drift_verdicts == 2

    def test_rollback_signal_ignores_cooldown(self):
        monitor = DriftMonitor(quiet_config(rollback_floor=0.5, cooldown_windows=5))
        feed_window(monitor, margins_like(0.0, seed=1))
        bad = lambda seed: feed_window(  # noqa: E731
            monitor,
            margins_like(0.0, seed=seed),
            labels=[-1] * 50,
            verdicts=[1] * 50,
        )
        assert bad(2).rollback is True  # fires the verdict + cooldown
        report = bad(3)
        assert report.drifted is False  # cooling
        assert report.rollback is True  # but a bad model is still bad

    def test_reset_forgets_reference_and_partial_window(self):
        monitor = DriftMonitor(quiet_config())
        feed_window(monitor, margins_like(0.0, seed=1))
        for m in margins_like(6.0, n=20, seed=2):
            monitor.observe(float(m), 1)
        monitor.reset()
        assert monitor.reference is None
        assert monitor.window_fill() == 0
        # post-reset, the shifted distribution becomes the new normal
        report = feed_window(monitor, margins_like(6.0, seed=3))
        assert report.drifted is False and report.psi is None
        assert feed_window(monitor, margins_like(6.0, seed=4)).drifted is False

    def test_observe_rejects_bad_label(self):
        monitor = DriftMonitor(quiet_config())
        with pytest.raises(DriftError, match="label"):
            monitor.observe(0.5, 1, label=0)


class TestQuarantine:
    def test_verdict_writes_complete_record(self, tmp_path):
        qdir = tmp_path / "quarantine"
        monitor = DriftMonitor(quiet_config(quarantine_dir=str(qdir)))
        feed_window(monitor, margins_like(0.0, seed=1))
        margins = margins_like(6.0, seed=2)
        labels = [1] * 12 + [None] * (len(margins) - 12)
        families = ["prime_probe"] * 12 + [None] * (len(margins) - 12)
        report = feed_window(
            monitor, margins, labels=labels, verdicts=[-1] * len(margins), families=families
        )
        assert report.drifted
        assert report.quarantined_to is not None
        path = tmp_path / "quarantine" / "window_00001.json"
        assert str(path) == report.quarantined_to
        record = json.loads(path.read_text())
        assert record["record_version"] == DRIFT_RECORD_VERSION
        assert record["report"]["window"] == 1
        assert record["report"]["reasons"] == report.reasons
        assert len(record["margins"]) == 50
        assert record["feedback"][0] == {"family": "prime_probe", "label": 1, "verdict": -1}
        assert monitor.quarantined_windows == 1

    def test_quiet_window_writes_nothing(self, tmp_path):
        qdir = tmp_path / "quarantine"
        monitor = DriftMonitor(quiet_config(quarantine_dir=str(qdir)))
        feed_window(monitor, margins_like(0.0, seed=1))
        feed_window(monitor, margins_like(0.0, seed=2))
        assert not qdir.exists() or not list(qdir.iterdir())

    def test_unwritable_dir_degrades_to_telemetry_only(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the directory should go")
        monitor = DriftMonitor(quiet_config(quarantine_dir=str(blocker / "sub")))
        feed_window(monitor, margins_like(0.0, seed=1))
        report = feed_window(monitor, margins_like(6.0, seed=2))
        assert report.drifted is True  # the verdict survives the lost record
        assert report.quarantined_to is None
        assert monitor.quarantined_windows == 0


class TestCounters:
    def test_metrics_snapshot_tracks_activity(self):
        monitor = DriftMonitor(quiet_config())
        feed_window(monitor, margins_like(0.0, seed=1), labels=[1] * 50, verdicts=[1] * 50)
        feed_window(monitor, margins_like(6.0, seed=2))
        c = monitor.counters()
        assert c["windows_evaluated"] == 2
        assert c["scored"] == 100
        assert c["feedback"] == 50
        assert c["drift_verdicts"] == 1
        assert c["reference_frozen"] is True
        assert c["last_window"]["drifted"] is True
        assert c["last_window"]["reasons"]
