"""Training-kernel equivalence: the optimized blocked kernel must be
bit-identical to the kept-as-reference naive ``fit_epoch`` across seeds,
shuffles, and fault-injected corpora; the minibatch mode must obey the
clamp and update-count contracts even though its training order differs."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.errors import ModelError
from repro.faults import FaultPlan
from repro.features import Normalizer, build_dataset
from repro.ingest import load_corpus_pooled
from repro.model import HashedPerceptron
from repro.model.kernels import TrainPlan

GOLDEN = Path(__file__).resolve().parent / "fixtures" / "golden"


def blobs(n=120, d=24, gap=3.0, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [
            rng.normal(-gap / 2, 1.0, size=(n // 2, d)),
            rng.normal(+gap / 2, 1.0, size=(n // 2, d)),
        ]
    )
    y = np.array([-1] * (n // 2) + [1] * (n // 2), dtype=np.int64)
    order = rng.permutation(n)
    return X[order], y[order]


def fit_pair(X, y, *, seed, epochs=12, theta=5.0, **kw):
    """Train one model per kernel from identical initial state."""
    out = {}
    for kernel in ("reference", "blocked"):
        model = HashedPerceptron(X.shape[1], theta=theta, seed=seed, **kw)
        history = model.fit(X, y, epochs=epochs, kernel=kernel)
        out[kernel] = (model.weights.copy(), history)
    return out


@pytest.mark.parametrize("seed", [0, 1, 7, 1234])
def test_blocked_matches_reference_bitwise(seed):
    X, y = blobs(seed=seed)
    pair = fit_pair(X, y, seed=seed)
    ref_w, ref_h = pair["reference"]
    blk_w, blk_h = pair["blocked"]
    assert ref_h == blk_h, "update histories diverged"
    np.testing.assert_array_equal(ref_w, blk_w)


def test_blocked_matches_reference_under_shuffle_streams():
    """Different fit seeds draw different shuffle orders; every one of them
    must agree bit-for-bit between kernels."""
    X, y = blobs(seed=3)
    for fit_seed in (0, 5, 99):
        ref = HashedPerceptron(X.shape[1], theta=5.0, seed=11)
        blk = HashedPerceptron(X.shape[1], theta=5.0, seed=11)
        ref_h = ref.fit(X, y, epochs=8, seed=fit_seed, kernel="reference")
        blk_h = blk.fit(X, y, epochs=8, seed=fit_seed, kernel="blocked")
        assert ref_h == blk_h
        np.testing.assert_array_equal(ref.weights, blk.weights)


def test_fit_epoch_kernels_agree_without_shuffle():
    X, y = blobs(seed=2)
    ref = HashedPerceptron(X.shape[1], theta=5.0, seed=4)
    blk = HashedPerceptron(X.shape[1], theta=5.0, seed=4)
    assert ref.fit_epoch(X, y, kernel="reference") == blk.fit_epoch(X, y, kernel="blocked")
    np.testing.assert_array_equal(ref.weights, blk.weights)


@pytest.mark.parametrize(
    "faults",
    [
        pytest.param(None, id="clean"),
        pytest.param(FaultPlan(corrupt_rate=0.25, seed=11), id="corrupt-25"),
        pytest.param(FaultPlan(corrupt_rate=0.50, seed=11), id="corrupt-50"),
    ],
)
def test_kernels_agree_on_fault_injected_corpus(faults):
    """The real (possibly salvage-degraded) feature matrices must train
    identically under both kernels, whatever the fault rate did to them."""
    results, _ = load_corpus_pooled(GOLDEN, workers=1, faults=faults)
    assert results, "golden corpus must yield at least one decodable trace"
    dataset = build_dataset([r.trace for r in results])
    X = Normalizer().fit(dataset.X).transform(dataset.X)
    pair = fit_pair(X, dataset.y, seed=7, epochs=6)
    ref_w, ref_h = pair["reference"]
    blk_w, blk_h = pair["blocked"]
    assert ref_h == blk_h
    np.testing.assert_array_equal(ref_w, blk_w)


def test_train_plan_preserves_index_multiset():
    """CSR dedup must reproduce exactly the flat index multiset per sample —
    that is what makes the fast update bit-identical to ``np.add.at``."""
    X, _ = blobs(n=30, seed=9)
    model = HashedPerceptron(X.shape[1], seed=9)
    flat = model._flat_indices(X)
    plan = TrainPlan.from_flat(flat)
    for i in range(flat.shape[0]):
        ui, cnt = plan.sample(i)
        assert len(ui) == len(np.unique(flat[i]))
        rebuilt = np.sort(np.repeat(ui, cnt))
        np.testing.assert_array_equal(rebuilt, np.sort(flat[i]))
        assert cnt.sum() == flat.shape[1]


def test_plan_indices_computed_once_per_fit_are_reused():
    """The permuted-row scratch is allocated once and reused across epochs."""
    X, y = blobs(n=40, seed=1)
    model = HashedPerceptron(X.shape[1], theta=5.0, seed=1)
    flat = model._flat_indices(X)
    plan = TrainPlan.from_flat(flat)
    order = np.arange(len(y))
    first = plan.permuted_rows(order)
    second = plan.permuted_rows(order[::-1].copy())
    assert first is second  # same buffer, rewritten in place
    np.testing.assert_array_equal(second, flat[order[::-1]])


def test_minibatch_respects_clamp_and_counts_updates():
    X, y = blobs(seed=5)
    model = HashedPerceptron(X.shape[1], theta=1000.0, weight_clamp=7, seed=5)
    history = model.fit(X, y, epochs=5, mode="minibatch")
    assert sum(history) > 0
    assert model.weights.max() <= 7
    assert model.weights.min() >= -7


def test_minibatch_learns_separable_data():
    X, y = blobs(gap=4.0, seed=6)
    model = HashedPerceptron(X.shape[1], theta=5.0, seed=6)
    model.fit(X, y, epochs=20, mode="minibatch")
    assert (model.predict(X) == y).mean() >= 0.95


def test_minibatch_size_one_equals_online():
    """A one-sample batch sees no stale decisions, so the minibatch rule
    degenerates to the online rule exactly."""
    X, y = blobs(n=60, seed=8)
    online = HashedPerceptron(X.shape[1], theta=5.0, seed=8)
    mb = HashedPerceptron(X.shape[1], theta=5.0, seed=8)
    h_online = online.fit(X, y, epochs=6)
    h_mb = mb.fit(X, y, epochs=6, mode="minibatch", minibatch_size=1)
    assert h_online == h_mb
    np.testing.assert_array_equal(online.weights, mb.weights)


def test_unknown_mode_and_kernel_are_typed_errors():
    X, y = blobs(n=20, seed=0)
    model = HashedPerceptron(X.shape[1], seed=0)
    with pytest.raises(ModelError):
        model.fit(X, y, mode="sgd")
    with pytest.raises(ModelError):
        model.fit(X, y, kernel="warp")
    with pytest.raises(ModelError):
        model.fit_epoch(X, y, kernel="warp")


# -- native C kernel: same bits as the spec, or a typed refusal -------------


def _native_available() -> bool:
    from repro.model import _native

    return _native.available()


@pytest.mark.skipif(not _native_available(), reason="no C compiler available")
@pytest.mark.parametrize("seed", [0, 7, 1234])
def test_native_kernel_matches_reference_bitwise(seed):
    X, y = blobs(seed=seed)
    ref = HashedPerceptron(X.shape[1], theta=5.0, seed=seed)
    nat = HashedPerceptron(X.shape[1], theta=5.0, seed=seed)
    ref_h = ref.fit(X, y, epochs=12, kernel="reference")
    nat_h = nat.fit(X, y, epochs=12, kernel="native")
    assert ref_h == nat_h, "update histories diverged"
    np.testing.assert_array_equal(ref.weights, nat.weights)
    np.testing.assert_array_equal(ref.decision(X), nat.decision(X))


@pytest.mark.skipif(not _native_available(), reason="no C compiler available")
def test_native_hash_and_margins_match_numpy_paths(monkeypatch):
    """The fused native hash/scoring routines must agree with the pure-numpy
    implementations bit-for-bit on the same trained weights."""
    from repro.model import _native

    X, y = blobs(seed=5)
    model = HashedPerceptron(X.shape[1], theta=5.0, seed=9)
    model.fit(X, y, epochs=6)
    native_flat = model._flat_indices(X)
    native_margins = model.decision(X)
    # force the numpy fallback for the same model and inputs
    monkeypatch.setattr(_native, "available", lambda: False)
    np.testing.assert_array_equal(model._flat_indices(X), native_flat)
    np.testing.assert_array_equal(model.decision(X), native_margins)


def test_auto_kernel_resolves_to_a_real_kernel():
    from repro.model.kernels import KERNEL_CHOICES, ONLINE_KERNELS, resolve_kernel

    resolved = resolve_kernel("auto")
    assert resolved in ONLINE_KERNELS
    assert "auto" in KERNEL_CHOICES
    with pytest.raises(ModelError):
        resolve_kernel("warp")
