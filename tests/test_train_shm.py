"""Shared-memory train-pool lifecycle: segments must never outlive the fit.

Every exit path — clean completion, a worker SIGKILL'd mid-fit, an injected
mid-fit exception, and a ``KeyboardInterrupt`` in the parent — must leave
``/dev/shm`` free of ``repro-train-*`` residue, and crash paths must degrade
to an in-process refit with a WARNING while producing the byte-identical
final ensemble.  A subprocess case runs a pooled fit under ``-W error`` to
prove no ``resource_tracker`` (or any other) warning fires.
"""

from __future__ import annotations

import glob
import logging
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.model import train_ensemble
from repro.model.shm import SEGMENT_PREFIX, AttachedArrays, SharedArrays

SRC = Path(__file__).resolve().parent.parent / "src"


def residue() -> list[str]:
    """Our shared-memory segments currently visible in /dev/shm."""
    return sorted(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


def blobs(n=80, d=16, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(-1.5, 1.0, size=(n // 2, d)), rng.normal(1.5, 1.0, size=(n // 2, d))]
    )
    y = np.array([-1] * (n // 2) + [1] * (n // 2), dtype=np.int64)
    return X, y


def _ensemble(workers: int, shm: str = "auto"):
    X, y = blobs()
    return train_ensemble(
        X,
        y,
        n_features=X.shape[1],
        seeds=[7000, 7001, 7002],
        model_kwargs={"theta": 5.0},
        fit_kwargs={"epochs": 6},
        workers=workers,
        shm=shm,
    )


# -- segment plumbing -------------------------------------------------------


def test_share_attach_round_trip():
    arrays = {
        "bins": np.arange(24, dtype=np.uint8).reshape(4, 6),
        "y": np.array([-1, 1, 1, -1], dtype=np.int64),
    }
    with SharedArrays(arrays) as shared:
        attached = AttachedArrays(shared.wire_specs())
        try:
            for key, arr in arrays.items():
                view = attached.arrays[key]
                np.testing.assert_array_equal(view, arr)
                assert view.dtype == arr.dtype and view.shape == arr.shape
        finally:
            attached.close()
    assert not residue()


def test_attached_views_are_read_only():
    with SharedArrays({"a": np.zeros(4, dtype=np.int32)}) as shared:
        with AttachedArrays(shared.wire_specs()) as attached:
            with pytest.raises(ValueError):
                attached.arrays["a"][0] = 1


def test_segments_visible_then_unlinked_on_normal_exit():
    assert not residue()
    with SharedArrays({"a": np.arange(8)}):
        assert len(residue()) == 1
    assert not residue()


def test_segments_unlinked_when_block_raises():
    with pytest.raises(RuntimeError):
        with SharedArrays({"a": np.arange(8)}):
            assert residue()
            raise RuntimeError("boom")
    assert not residue()


def test_segments_unlinked_on_keyboard_interrupt():
    with pytest.raises(KeyboardInterrupt):
        with SharedArrays({"a": np.arange(8)}):
            assert residue()
            raise KeyboardInterrupt
    assert not residue()


def test_close_is_idempotent():
    shared = SharedArrays({"a": np.arange(8)})
    shared.close()
    shared.close()
    assert not residue()


# -- pool exit paths --------------------------------------------------------


def test_no_residue_after_clean_pooled_fit():
    _ensemble(workers=2, shm="on")
    assert not residue()


def test_worker_sigkill_degrades_with_warning_and_identical_model(
    monkeypatch, caplog
):
    serial = _ensemble(workers=1)
    monkeypatch.setenv("REPRO_TRAIN_POOL_KILL_MEMBER", "1")
    # the repro telemetry root owns its own stderr handler and does not
    # propagate; re-enable propagation so caplog can observe the WARNING
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
    with caplog.at_level(logging.WARNING, logger="repro.model.train_pool"):
        pooled = _ensemble(workers=2, shm="on")
    assert any("train_pool.worker_lost" in r.getMessage() for r in caplog.records)
    for a, b in zip(serial, pooled):
        np.testing.assert_array_equal(a.model.weights, b.model.weights)
        assert a.history == b.history
    assert not residue()


def test_worker_exception_degrades_with_warning_and_identical_model(
    monkeypatch, caplog
):
    serial = _ensemble(workers=1)
    monkeypatch.setenv("REPRO_TRAIN_POOL_RAISE_MEMBER", "2")
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
    with caplog.at_level(logging.WARNING, logger="repro.model.train_pool"):
        pooled = _ensemble(workers=2, shm="on")
    lost = [r for r in caplog.records if "train_pool.worker_lost" in r.getMessage()]
    assert lost and "member=2" in lost[0].getMessage()
    for a, b in zip(serial, pooled):
        np.testing.assert_array_equal(a.model.weights, b.model.weights)
        assert a.history == b.history
    assert not residue()


def test_legacy_broadcast_transport_also_degrades(monkeypatch, caplog):
    serial = _ensemble(workers=1)
    monkeypatch.setenv("REPRO_TRAIN_POOL_KILL_MEMBER", "0")
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
    with caplog.at_level(logging.WARNING, logger="repro.model.train_pool"):
        pooled = _ensemble(workers=2, shm="off")
    assert any("train_pool.worker_lost" in r.getMessage() for r in caplog.records)
    for a, b in zip(serial, pooled):
        np.testing.assert_array_equal(a.model.weights, b.model.weights)
    assert not residue()


# -- warnings-as-errors: the resource tracker must stay silent --------------

_W_ERROR_SCRIPT = """
import numpy as np
from repro.model import train_ensemble

rng = np.random.default_rng(0)
X = rng.normal(size=(120, 12))
y = np.where(rng.random(120) > 0.5, 1, -1).astype(np.int64)
members = train_ensemble(
    X, y, n_features=12, seeds=[1, 2, 3],
    fit_kwargs={"epochs": 4}, workers=2, shm="on",
)
assert len(members) == 3
print("SHM_OK")
"""


def test_pooled_shm_fit_is_warning_free_under_W_error():
    proc = subprocess.run(
        [sys.executable, "-W", "error", "-c", _W_ERROR_SCRIPT],
        capture_output=True,
        text=True,
        timeout=180,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "SHM_OK" in proc.stdout
    assert "resource_tracker" not in proc.stderr
    assert "leaked" not in proc.stderr
    assert not residue()
