"""Retry/backoff behaviour with an injected flaky reader and a fake clock."""

from __future__ import annotations

import random

import pytest

from repro.errors import InjectedIOError, RetryExhausted, TraceDecodeError
from repro.faults import FaultInjector, FaultPlan
from repro.ingest import RetryPolicy, retry_call


class FlakyReader:
    """Fails with OSError for the first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int, payload: bytes = b"ok"):
        self.failures = failures
        self.payload = payload
        self.calls = 0

    def __call__(self, attempt: int) -> bytes:
        self.calls += 1
        if self.calls <= self.failures:
            raise InjectedIOError(f"flaky failure #{self.calls}")
        return self.payload


def test_succeeds_after_transient_failures():
    reader = FlakyReader(failures=2)
    sleeps: list[float] = []
    result = retry_call(reader, RetryPolicy(attempts=4, jitter=0.0), sleep=sleeps.append)
    assert result == b"ok"
    assert reader.calls == 3
    assert len(sleeps) == 2  # one backoff per failed attempt


def test_exhaustion_raises_typed_error_with_cause():
    reader = FlakyReader(failures=99)
    with pytest.raises(RetryExhausted) as err:
        retry_call(reader, RetryPolicy(attempts=3), sleep=lambda _: None)
    assert err.value.attempts == 3
    assert isinstance(err.value.last, InjectedIOError)
    assert reader.calls == 3
    desc = err.value.describe()
    assert desc["code"] == "retry_exhausted"
    assert "InjectedIOError" in desc["last_error"]


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(attempts=8, base_delay=0.1, backoff=2.0, max_delay=0.5, jitter=0.0)
    delays = [policy.delay_for(a) for a in range(6)]
    assert delays[:3] == [0.1, 0.2, 0.4]
    assert all(d == 0.5 for d in delays[3:])


def test_jitter_stays_within_fraction():
    policy = RetryPolicy(base_delay=1.0, backoff=1.0, max_delay=1.0, jitter=0.25)
    rng = random.Random(42)
    for attempt in range(20):
        d = policy.delay_for(attempt, rng)
        assert 1.0 <= d <= 1.25


def test_nonretryable_error_propagates_immediately():
    calls = []

    def decode_fails(attempt: int):
        calls.append(attempt)
        raise TraceDecodeError("permanent")

    with pytest.raises(TraceDecodeError):
        retry_call(decode_fails, RetryPolicy(attempts=5), sleep=lambda _: None)
    assert calls == [0]  # permanent errors are never retried


def test_on_retry_callback_sees_each_failure():
    seen = []
    reader = FlakyReader(failures=2)
    retry_call(
        reader,
        RetryPolicy(attempts=4, jitter=0.0),
        sleep=lambda _: None,
        on_retry=lambda n, exc, delay: seen.append((n, type(exc).__name__)),
    )
    assert seen == [(0, "InjectedIOError"), (1, "InjectedIOError")]


# -- fault injector determinism ---------------------------------------------


def test_fault_plan_parse():
    plan = FaultPlan.parse("io=0.2, corrupt=0.25, seed=7, persistent")
    assert plan == FaultPlan(io_rate=0.2, corrupt_rate=0.25, seed=7, transient=False)
    assert plan.active
    assert not FaultPlan().active
    with pytest.raises(ValueError):
        FaultPlan.parse("bogus=1")


def test_injected_io_errors_are_deterministic_per_attempt():
    injector = FaultInjector(FaultPlan(io_rate=0.5, seed=3))

    def outcomes():
        out = []
        for attempt in range(6):
            try:
                injector.maybe_io_error("/corpus/a.pkl", attempt)
                out.append(True)
            except InjectedIOError:
                out.append(False)
        return out

    first, second = outcomes(), outcomes()
    assert first == second  # same (seed, path, attempt) -> same decision
    assert True in first and False in first  # transient mode re-rolls per attempt


def test_persistent_io_fault_never_recovers():
    injector = FaultInjector(FaultPlan(io_rate=1.0, seed=0, transient=False))
    for attempt in range(4):
        with pytest.raises(InjectedIOError):
            injector.maybe_io_error("/corpus/b.pkl", attempt)


def test_corruption_is_deterministic_per_path():
    injector = FaultInjector(FaultPlan(corrupt_rate=1.0, seed=11))
    data = bytes(range(256)) * 8
    assert injector.corrupt(data, "x.pkl") == injector.corrupt(data, "x.pkl")
    assert injector.corrupt(data, "x.pkl") != data
