"""Dataset-cache tier: key sensitivity, mmap roundtrips, invalidation
fallbacks, quarantine aliasing, and the vectorized ``build_dataset``.

The tier's contract is "never worse than no cache": every test that damages
an entry must see a logged event, a cold fallback, and metrics bit-identical
to a run that never had a cache.
"""

from __future__ import annotations

import json
import logging
import os
import shutil

import numpy as np
import pytest

from conftest import make_trace, write_synthetic_corpus
from repro.faults import FaultPlan
from repro.features import Dataset, DatasetCache, assemble_corpus, build_dataset
from repro.features import dataset_cache as dc_module
from repro.features.dataset_cache import MANIFEST_NAME, entry_problems
from repro.pipeline import PipelineConfig, run_pipeline


def small_config(corpus, out, **overrides) -> PipelineConfig:
    defaults = dict(
        trace_dir=str(corpus),
        out_dir=str(out),
        test_frac=0.3,
        epochs=8,
        seed=7,
        n_models=2,
        theta=5.0,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def stripped(metrics: dict) -> dict:
    """Metrics minus the fields that legitimately differ between a cold and a
    warm run (timestamps, wall clocks, cache bookkeeping)."""
    doc = json.loads(json.dumps(metrics))
    for key in ("created", "elapsed_s", "timings", "dataset_cache"):
        doc.pop(key, None)
    doc.get("ingest", {}).pop("cache", None)
    return doc


@pytest.fixture()
def propagate_repro_logs(monkeypatch):
    """telemetry installs a non-propagating handler on the ``repro`` root;
    re-enable propagation so caplog can observe events."""
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)


# ---------------------------------------------------------------------------
# satellite: vectorized build_dataset stays bit-identical to the naive loop
# ---------------------------------------------------------------------------


def _reference_build(traces):
    """The historical trace-by-trace assembly, inlined as the oracle."""
    from collections import Counter

    widths = Counter(t.n_features for t in traces)
    width = widths.most_common(1)[0][0]
    kept, rows, labels, groups = [], [], [], []
    for trace in traces:
        if trace.n_features != width or trace.n_intervals == 0:
            continue
        group = len(kept)
        kept.append(trace)
        label = 1 if trace.is_attack else -1
        for row in np.asarray(trace.rows, dtype=np.float64):
            rows.append(row)
            labels.append(label)
            groups.append(group)
    return (
        np.vstack(rows),
        np.array(labels, dtype=np.int64),
        np.array(groups, dtype=np.int64),
        kept,
    )


def test_vectorized_build_dataset_bit_identical():
    traces = [
        make_trace(program=f"p{i}", label=1 if i % 3 == 0 else -1,
                   attack_class="ac" if i % 3 == 0 else None,
                   n_intervals=1 + (i % 5), seed=i)
        for i in range(17)
    ]
    # a foreign-width capture and a rowless trace: both must be skipped
    traces.insert(3, make_trace(program="wrong_width", n_features=7, seed=99))
    traces.insert(9, make_trace(program="empty", n_intervals=0, seed=98))

    ds = build_dataset(traces)
    X_ref, y_ref, g_ref, kept_ref = _reference_build(traces)

    assert ds.X.dtype == np.float64 and ds.X.flags["C_CONTIGUOUS"]
    assert np.array_equal(ds.X, X_ref)  # exact, not allclose
    assert np.array_equal(ds.y, y_ref)
    assert np.array_equal(ds.groups, g_ref)
    assert ds.traces == kept_ref
    assert {p for p, _ in ds.skipped} == {"wrong_width", "empty"}
    # source_indices maps each kept trace back to its input position
    assert all(traces[src] is ds.traces[k] for k, src in enumerate(ds.source_indices))


# ---------------------------------------------------------------------------
# corpus key: every byte and config knob that matters must move the digest
# ---------------------------------------------------------------------------


def test_corpus_key_stability_and_sensitivity(tmp_path, monkeypatch):
    corpus = tmp_path / "corpus"
    paths = write_synthetic_corpus(corpus, n_benign=3, n_attack=3)
    cache = DatasetCache(tmp_path / "dc")

    base = cache.corpus_key(corpus)
    assert base.files == 6 and base.bytes > 0
    assert cache.corpus_key(corpus).digest == base.digest  # deterministic

    # one flipped payload byte
    blob = bytearray(paths[0].read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    paths[0].write_bytes(bytes(blob))
    flipped = cache.corpus_key(corpus)
    assert flipped.digest != base.digest
    paths[0].write_bytes(bytes(blob))  # idempotent rewrite, key stable
    assert cache.corpus_key(corpus).digest == flipped.digest

    # added / removed files
    extra = corpus / "extra.pkl"
    extra.write_bytes(paths[1].read_bytes())
    assert cache.corpus_key(corpus).digest != flipped.digest
    extra.unlink()
    removed = paths[2].read_bytes()
    paths[2].unlink()
    assert cache.corpus_key(corpus).digest != flipped.digest
    paths[2].write_bytes(removed)

    # schema bumps (codec, decode cache, dataset cache) each move the key
    for attr in ("TRACE_VERSION", "CACHE_VERSION", "DATASET_CACHE_VERSION"):
        with monkeypatch.context() as m:
            m.setattr(dc_module, attr, 999)
            assert cache.corpus_key(corpus).digest != flipped.digest, attr

    # fault plans: inactive == absent, active plans (and their retry budget /
    # corpus path, which the fault RNG keys on) are part of the identity
    assert (
        cache.corpus_key(corpus, faults=FaultPlan()).digest
        == cache.corpus_key(corpus).digest
    )
    faulty = cache.corpus_key(corpus, faults=FaultPlan(io_rate=0.5, seed=3))
    assert faulty.digest != cache.corpus_key(corpus).digest
    assert (
        cache.corpus_key(corpus, faults=FaultPlan(io_rate=0.5, seed=4)).digest
        != faulty.digest
    )

    # same bytes in a different directory: clean corpora alias (pure content
    # addressing), fault-active corpora do not (path-keyed fault RNG)
    moved = tmp_path / "moved"
    shutil.copytree(corpus, moved)
    assert cache.corpus_key(moved).digest == cache.corpus_key(corpus).digest
    assert (
        cache.corpus_key(moved, faults=FaultPlan(io_rate=0.5, seed=3)).digest
        != faulty.digest
    )


def test_unreadable_file_poisons_key(tmp_path):
    corpus = tmp_path / "corpus"
    paths = write_synthetic_corpus(corpus, n_benign=2, n_attack=2)
    cache = DatasetCache(tmp_path / "dc")
    base = cache.corpus_key(corpus)

    # a file the sweep cannot read contributes a poison token, not its bytes:
    # the key differs both from the healthy corpus and from the corpus with
    # the file absent entirely (chmod tricks don't apply under root, so stand
    # a directory in the file's place — opening it raises IsADirectoryError)
    target = paths[0]
    blob = target.read_bytes()
    target.unlink()
    target.mkdir()
    try:
        unreadable = cache.corpus_key(corpus)
    finally:
        target.rmdir()
        target.write_bytes(blob)
    target_absent = tmp_path / "absent"
    shutil.copytree(corpus, target_absent)
    (target_absent / target.name).unlink()
    assert unreadable.digest != base.digest
    assert unreadable.digest != cache.corpus_key(target_absent).digest


# ---------------------------------------------------------------------------
# store / load roundtrip
# ---------------------------------------------------------------------------


def test_assemble_roundtrip_bit_identical(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=4, n_attack=4)
    kwargs = dict(cache_root=tmp_path / "cc", dataset_cache_root=tmp_path / "dc")

    cold = assemble_corpus(corpus, **kwargs)
    assert cold.dataset_cache == {
        "enabled": True, "hit": False, "stored": True,
        "key": cold.key.digest[:12],
    }
    warm = assemble_corpus(corpus, **kwargs)
    assert warm.dataset_cache["hit"] is True

    assert np.array_equal(np.asarray(warm.dataset.X), cold.dataset.X)
    assert np.array_equal(np.asarray(warm.dataset.y), cold.dataset.y)
    assert np.array_equal(np.asarray(warm.dataset.groups), cold.dataset.groups)
    assert warm.dataset.skipped == cold.dataset.skipped
    assert warm.ingest == cold.ingest
    for a, b in zip(cold.dataset.traces, warm.dataset.traces):
        assert (a.program, a.label, a.attack_class, a.interval, a.n_intervals) == (
            b.program, b.label, b.attack_class, b.interval, b.n_intervals
        )
        # per-trace payload provenance comes from the key sweep
        assert len(b.payload_sha256) == 64
    # warm matrices arrive memory-mapped, not copied
    assert isinstance(warm.dataset.X, np.memmap)
    assert entry_problems(warm.cache.entry_dir(warm.key.digest)) == []


def test_warm_hit_never_touches_the_decoder(tmp_path, monkeypatch):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=3, n_attack=3)
    assemble_corpus(corpus, dataset_cache_root=tmp_path / "dc")

    def boom(*a, **k):  # decode path must be unreachable on a warm hit
        raise AssertionError("load_corpus_pooled called on a warm hit")

    monkeypatch.setattr(dc_module, "load_corpus_pooled", boom)
    warm = assemble_corpus(corpus, dataset_cache_root=tmp_path / "dc")
    assert warm.dataset_cache["hit"] is True


# ---------------------------------------------------------------------------
# sweep memo: warm sweeps are pure stats, and the memo can never mask a change
# ---------------------------------------------------------------------------


def test_sweep_memo_makes_warm_sweeps_stat_only(tmp_path, monkeypatch):
    corpus = tmp_path / "corpus"
    paths = write_synthetic_corpus(corpus, n_benign=4, n_attack=4)
    cache = DatasetCache(tmp_path / "dc")
    base = cache.corpus_key(corpus)
    assert cache._sweep_memo_path(corpus).is_file()

    def boom(path):
        raise AssertionError(f"re-hashed {path} despite unchanged stats")

    monkeypatch.setattr(dc_module, "_file_digest", boom)
    assert cache.corpus_key(corpus).digest == base.digest
    monkeypatch.undo()

    # touching mtime without changing content re-hashes back to the same key
    os.utime(paths[0])
    assert cache.corpus_key(corpus).digest == base.digest
    # a content change is never masked by the memo (write moves mtime)
    blob = bytearray(paths[0].read_bytes())
    blob[0] ^= 0xFF
    paths[0].write_bytes(bytes(blob))
    assert cache.corpus_key(corpus).digest != base.digest


def test_garbled_sweep_memo_degrades_to_full_hash(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=3, n_attack=3)
    cache = DatasetCache(tmp_path / "dc")
    base = cache.corpus_key(corpus)
    memo_path = cache._sweep_memo_path(corpus)
    memo_path.write_text("not\x00a\x00memo\nnonsense line\n")
    assert cache.corpus_key(corpus).digest == base.digest
    assert "nonsense" not in memo_path.read_text()  # fresh sweep healed it
    # a cache root with no memo at all agrees on the digest
    assert DatasetCache(tmp_path / "dc2").corpus_key(corpus).digest == base.digest


# ---------------------------------------------------------------------------
# pipeline integration: warm run is bit-identical, metrics report the tier
# ---------------------------------------------------------------------------


def test_pipeline_warm_run_bit_identical_metrics(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=6, n_attack=6)
    common = dict(
        cache_dir=str(tmp_path / "cc"), dataset_cache_dir=str(tmp_path / "dc")
    )

    cold = run_pipeline(small_config(corpus, tmp_path / "cold", **common))
    assert cold["dataset_cache"]["hit"] is False
    assert cold["dataset_cache"]["stored"] is True
    assert cold["dataset_cache"]["stats"]["stores"] == 1

    warm = run_pipeline(small_config(corpus, tmp_path / "warm", **common))
    assert warm["dataset_cache"]["hit"] is True
    assert warm["dataset_cache"]["normalizer_cached"] is True
    assert "cache" not in warm["ingest"]  # no decode happened at all

    assert stripped(warm) == stripped(cold)
    # the reconstructed quarantine manifest and the cached normalizer stats
    # are written to the run dir exactly as on the cold path
    assert (tmp_path / "warm" / "quarantine.json").exists()
    cold_norm = json.loads((tmp_path / "cold" / "normalizer.json").read_text())
    warm_norm = json.loads((tmp_path / "warm" / "normalizer.json").read_text())
    assert warm_norm == cold_norm

    # a different split fits (and sidecars) its own normalizer
    other = run_pipeline(
        small_config(corpus, tmp_path / "other", seed=11, **common)
    )
    assert other["dataset_cache"]["hit"] is True
    assert other["dataset_cache"]["normalizer_cached"] is False


def test_normalized_sidecar_skips_transform_bit_identically(tmp_path, monkeypatch):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=6, n_attack=6)
    common = dict(dataset_cache_dir=str(tmp_path / "dc"))
    cold = run_pipeline(small_config(corpus, tmp_path / "cold", **common))
    assert cold["dataset_cache"]["normalized_cached"] is False

    from repro.features.normalize import Normalizer

    def boom(self, X):
        raise AssertionError("transform ran despite a normalized sidecar")

    monkeypatch.setattr(Normalizer, "transform", boom)
    warm = run_pipeline(small_config(corpus, tmp_path / "warm", **common))
    assert warm["dataset_cache"]["normalized_cached"] is True
    assert stripped(warm) == stripped(cold)


def test_corrupted_normalized_sidecar_falls_back(
    tmp_path, caplog, propagate_repro_logs
):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=5, n_attack=5)
    common = dict(dataset_cache_dir=str(tmp_path / "dc"))
    cold = run_pipeline(small_config(corpus, tmp_path / "cold", **common))

    cache = DatasetCache(tmp_path / "dc")
    entry = cache.entry_dir(cache.corpus_key(corpus).digest)
    sidecar = entry / "normalized_seed7_frac0.3.npy"
    assert sidecar.is_file()
    blob = bytearray(sidecar.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    sidecar.write_bytes(bytes(blob))

    with caplog.at_level(logging.INFO, logger="repro"):
        warm = run_pipeline(small_config(corpus, tmp_path / "warm", **common))
    assert warm["dataset_cache"]["hit"] is True
    assert warm["dataset_cache"]["normalized_cached"] is False  # dropped, recomputed
    assert stripped(warm) == stripped(cold)
    assert any(
        "event=dataset_cache.bad_normalized" in r.getMessage() for r in caplog.records
    )
    assert entry_problems(entry) == []
    # the recompute re-published the sidecar, so the next run hits it again
    redo = run_pipeline(small_config(corpus, tmp_path / "redo", **common))
    assert redo["dataset_cache"]["normalized_cached"] is True


def test_pipeline_quarantining_run_never_aliases_clean_cache(tmp_path):
    """Satellite regression: a corpus that quarantines files must key (and
    cache) separately from the clean corpus — byte content differs, and
    fault-active runs refuse content-only aliasing outright."""
    corpus = tmp_path / "corpus"
    paths = write_synthetic_corpus(corpus, n_benign=5, n_attack=5)
    common = dict(dataset_cache_dir=str(tmp_path / "dc"))

    clean = run_pipeline(small_config(corpus, tmp_path / "clean", **common))
    assert clean["ingest"]["quarantined"] == 0

    # now damage one payload so ingest quarantines it
    paths[0].write_bytes(b"\x00" * 64)
    damaged_cold = run_pipeline(small_config(corpus, tmp_path / "d1", **common))
    assert damaged_cold["ingest"]["quarantined"] == 1
    assert damaged_cold["dataset_cache"]["hit"] is False  # no aliasing
    damaged_warm = run_pipeline(small_config(corpus, tmp_path / "d2", **common))
    assert damaged_warm["dataset_cache"]["hit"] is True
    assert damaged_warm["ingest"]["quarantined"] == 1
    assert stripped(damaged_warm) == stripped(damaged_cold)
    # the warm run reconstructs the quarantine manifest faithfully
    q_cold = json.loads((tmp_path / "d1" / "quarantine.json").read_text())
    q_warm = json.loads((tmp_path / "d2" / "quarantine.json").read_text())
    assert [e["path"] for e in q_warm["entries"]] == [
        e["path"] for e in q_cold["entries"]
    ]
    assert q_warm["counts"] == q_cold["counts"]

    # same trace bytes but an active fault plan: distinct key, fresh entry
    faulty = run_pipeline(
        small_config(
            corpus, tmp_path / "f1",
            faults=FaultPlan(io_rate=0.4, seed=9), **common,
        )
    )
    assert faulty["dataset_cache"]["hit"] is False


# ---------------------------------------------------------------------------
# invalidation: damaged entries fall back cold with identical results
# ---------------------------------------------------------------------------


@pytest.fixture()
def warmed(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=5, n_attack=5)
    common = dict(dataset_cache_dir=str(tmp_path / "dc"))
    cold = run_pipeline(small_config(corpus, tmp_path / "cold", **common))
    cache = DatasetCache(tmp_path / "dc")
    entry = cache.entry_dir(cache.corpus_key(corpus).digest)
    assert entry.is_dir()
    return corpus, tmp_path, common, cold, entry


def _rerun_expect_fallback(warmed_fixture, caplog):
    corpus, tmp_path, common, cold, entry = warmed_fixture
    with caplog.at_level(logging.INFO, logger="repro"):
        redo = run_pipeline(small_config(corpus, tmp_path / "redo", **common))
    assert redo["dataset_cache"]["hit"] is False  # fell back to cold assembly
    assert redo["dataset_cache"]["stats"]["invalidated"] == 1
    assert redo["dataset_cache"]["stored"] is True  # and re-published
    assert stripped(redo) == stripped(cold)
    assert any("event=dataset_cache.invalid" in r.getMessage() for r in caplog.records)
    assert entry_problems(entry) == []  # the republished entry is healthy
    return redo


def test_truncated_shard_falls_back(warmed, caplog, propagate_repro_logs):
    entry = warmed[-1]
    shard = entry / "X.npy"
    shard.write_bytes(shard.read_bytes()[:-16])
    _rerun_expect_fallback(warmed, caplog)


def test_corrupted_shard_crc_falls_back(warmed, caplog, propagate_repro_logs):
    entry = warmed[-1]
    shard = entry / "y.npy"
    blob = bytearray(shard.read_bytes())
    blob[-1] ^= 0xFF  # same length, different bytes: only the CRC catches it
    shard.write_bytes(bytes(blob))
    _rerun_expect_fallback(warmed, caplog)


def test_torn_manifest_falls_back(warmed, caplog, propagate_repro_logs):
    entry = warmed[-1]
    manifest = entry / MANIFEST_NAME
    manifest.write_text(manifest.read_text()[: manifest.stat().st_size // 2])
    redo = _rerun_expect_fallback(warmed, caplog)
    assert redo["dataset_cache"]["stats"]["hits"] == 0


def test_schema_bump_misses_without_invalidation(warmed, monkeypatch):
    corpus, tmp_path, common, cold, entry = warmed
    monkeypatch.setattr(dc_module, "DATASET_CACHE_VERSION", 2)
    redo = run_pipeline(small_config(corpus, tmp_path / "redo", **common))
    assert redo["dataset_cache"]["hit"] is False
    # the old entry keys differently now; it is simply never visited
    assert redo["dataset_cache"]["stats"]["invalidated"] == 0
    assert entry.is_dir()
    assert stripped(redo) == stripped(cold)


def test_flipped_payload_byte_misses(warmed):
    corpus, tmp_path, common, cold, entry = warmed
    target = sorted(corpus.glob("*.pkl"))[0]
    blob = bytearray(target.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    target.write_bytes(bytes(blob))
    redo = run_pipeline(small_config(corpus, tmp_path / "redo", **common))
    assert redo["dataset_cache"]["hit"] is False
    assert entry.is_dir()  # the clean corpus's entry is untouched


def test_store_oserror_degrades_to_cache_off(tmp_path, monkeypatch, caplog,
                                             propagate_repro_logs):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=3, n_attack=3)

    real_replace = dc_module.os.replace

    def failing_replace(src, dst):
        if "dc" in str(dst):
            raise OSError("disk full")
        return real_replace(src, dst)

    monkeypatch.setattr(dc_module.os, "replace", failing_replace)
    with caplog.at_level(logging.INFO, logger="repro"):
        assembly = assemble_corpus(corpus, dataset_cache_root=tmp_path / "dc")
    # the run still produced its dataset; the failed publish logged and left
    # no half-written entry behind
    assert assembly.dataset.n_samples > 0
    assert assembly.dataset_cache["stored"] is False
    assert assembly.cache.stats.errors == 1
    assert any("event=dataset_cache.error" in r.getMessage() for r in caplog.records)
    assert not list((tmp_path / "dc").glob("**/MANIFEST.json"))
    assert not list((tmp_path / "dc").glob(".tmp-*"))


# ---------------------------------------------------------------------------
# serve.retrain: corpus-directory feedback rides the same tier
# ---------------------------------------------------------------------------


def test_retrain_from_corpus_directory_uses_dataset_cache(tmp_path):
    from repro.model import ArtifactStore
    from repro.serve.retrain import retrain

    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=4, n_attack=4)
    artifact_root = tmp_path / "artifacts"
    base = run_pipeline(
        small_config(corpus, tmp_path / "run", artifact_root=str(artifact_root))
    )["artifact"]["version"]

    kwargs = dict(mode="full", passes=2, seed=3,
                  dataset_cache_dir=str(tmp_path / "dc"))
    v_cold = retrain(str(artifact_root), base, str(corpus), **kwargs)
    cache = DatasetCache(tmp_path / "dc")
    assert len(cache) == 1  # the cold retrain populated the tier
    v_warm = retrain(str(artifact_root), base, str(corpus), **kwargs)

    store = ArtifactStore(str(artifact_root))
    cold_models = store.load(v_cold).models
    warm_models = store.load(v_warm).models
    for a, b in zip(cold_models, warm_models):
        assert np.array_equal(a.weights, b.weights)  # mmap path is exact


# ---------------------------------------------------------------------------
# audit helper
# ---------------------------------------------------------------------------


def test_entry_problems_reports_each_damage_kind(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=3, n_attack=3)
    a = assemble_corpus(corpus, dataset_cache_root=tmp_path / "dc")
    entry = a.cache.entry_dir(a.key.digest)
    assert entry_problems(entry) == []

    (entry / "stray.bin").write_bytes(b"junk")
    assert entry_problems(entry) == ["orphan:stray.bin"]
    (entry / "stray.bin").unlink()

    shard = entry / "groups.npy"
    blob = shard.read_bytes()
    shard.write_bytes(blob[:-4])
    assert any(p.startswith("groups.npy:size_") for p in entry_problems(entry))
    shard.write_bytes(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
    assert "groups.npy:crc_mismatch" in entry_problems(entry)
    shard.unlink()
    assert "groups.npy:missing" in entry_problems(entry)

    (entry / MANIFEST_NAME).write_text("{not json")
    assert entry_problems(entry) == ["manifest_torn"]


# ---------------------------------------------------------------------------
# Dataset compatibility: cache loads build no source_indices
# ---------------------------------------------------------------------------


def test_dataset_default_has_no_source_indices():
    ds = Dataset(
        X=np.zeros((2, 3)), y=np.array([-1, -1]), groups=np.array([0, 0])
    )
    assert ds.source_indices is None
