"""Property-based codec tests.

Two invariants, checked over generated inputs:

1. **Round trip**: any well-formed trace survives ``encode_trace`` ->
   ``decode_trace`` bit-for-bit (NaNs included), on the clean path.
2. **Typed failures only**: arbitrary byte-level mutations of an encoded
   trace either still decode to a valid ``Trace`` or raise something inside
   the ``TraceDecodeError`` taxonomy -- never a bare exception.  This is the
   contract the quarantine layer is built on.

Runs derandomized so CI is stable; bump ``max_examples`` locally to dig.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402
from hypothesis.extra import numpy as npst  # noqa: E402

from repro.errors import TraceDecodeError  # noqa: E402
from repro.sim.trace import Trace, decode_trace, encode_trace  # noqa: E402

_text = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E), min_size=1, max_size=16
)
_meta_value = st.one_of(
    st.none(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, width=64),
    _text,
)


@st.composite
def traces(draw) -> Trace:
    n_intervals = draw(st.integers(min_value=1, max_value=5))
    n_features = draw(st.integers(min_value=1, max_value=8))
    rows = draw(
        npst.arrays(
            dtype=np.float64,
            shape=(n_intervals, n_features),
            elements=st.floats(allow_nan=True, allow_infinity=True, width=64),
        )
    )
    stat_names = draw(
        st.one_of(
            st.none(),
            st.lists(_text, min_size=n_features, max_size=n_features),
        )
    )
    return Trace(
        program=draw(_text),
        label=draw(st.integers(min_value=-(2**31), max_value=2**31 - 1)),
        attack_class=draw(st.one_of(st.none(), _text)),
        interval=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        rows=rows,
        stat_names=stat_names,
        meta=draw(st.dictionaries(_text, _meta_value, max_size=4)),
    )


@given(trace=traces())
@settings(max_examples=75, deadline=None, derandomize=True)
def test_encode_decode_round_trip(trace):
    decoded, report = decode_trace(encode_trace(trace), path="<prop>")
    assert report.mode == "clean"
    assert not report.degraded
    assert decoded == trace


_MUTATIONS = st.lists(
    st.tuples(
        st.sampled_from(["flip", "zero", "delete", "insert", "truncate"]),
        st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=8,
)


def _mutate(data: bytes, mutations) -> bytes:
    buf = bytearray(data)
    for kind, frac, value in mutations:
        if not buf:
            break
        pos = int(frac * len(buf))
        if kind == "flip":
            buf[pos] ^= value or 0x01
        elif kind == "zero":
            buf[pos] = 0
        elif kind == "delete":
            del buf[pos]
        elif kind == "insert":
            buf.insert(pos, value)
        elif kind == "truncate":
            del buf[pos:]
    return bytes(buf)


@given(trace=traces(), mutations=_MUTATIONS)
@settings(max_examples=150, deadline=None, derandomize=True)
def test_mutations_stay_inside_error_taxonomy(trace, mutations):
    mutated = _mutate(encode_trace(trace), mutations)
    try:
        decoded, report = decode_trace(
            mutated, path="<mutated>", deadline=time.monotonic() + 10.0
        )
    except TraceDecodeError:
        return  # typed rejection: exactly what the quarantine layer expects
    # survived the damage (or the mutation was semantically a no-op): the
    # decode must still be a structurally valid trace
    assert isinstance(decoded, Trace)
    assert decoded.rows.ndim == 2
    assert report.mode in ("clean", "salvage")


@given(junk=st.binary(max_size=256))
@settings(max_examples=150, deadline=None, derandomize=True)
def test_pure_junk_never_escapes_taxonomy(junk):
    try:
        decoded, _ = decode_trace(junk, path="<junk>", deadline=time.monotonic() + 10.0)
    except TraceDecodeError:
        return
    assert isinstance(decoded, Trace)
