"""End-to-end pipeline on a tiny synthetic corpus, clean and under fault
injection, via the same entry point as ``python -m repro.pipeline``."""

from __future__ import annotations

import json

import pytest

from conftest import write_synthetic_corpus
from repro.errors import IngestError
from repro.faults import FaultPlan
from repro.pipeline import PipelineConfig, run_pipeline, split_traces
from repro.pipeline.__main__ import main as cli_main


def small_config(corpus, out, **overrides) -> PipelineConfig:
    defaults = dict(
        trace_dir=str(corpus),
        out_dir=str(out),
        test_frac=0.3,
        epochs=10,
        seed=7,
        n_models=2,
        theta=5.0,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def test_clean_run_end_to_end(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=6, n_attack=6)
    out = tmp_path / "run"
    metrics = run_pipeline(small_config(corpus, out))

    assert (out / "metrics.json").exists()
    assert (out / "quarantine.json").exists()
    assert (out / "normalizer.json").exists()
    assert (out / "models" / "member_0.npz").exists()

    doc = json.loads((out / "metrics.json").read_text())
    assert doc == metrics
    assert doc["ingest"]["loaded"] == 12
    assert doc["ingest"]["quarantined"] == 0
    # two cleanly-separated blobs: the detector must nail the held-out traces
    assert doc["metrics"]["trace_accuracy"] == 1.0
    assert doc["metrics"]["benign_false_positive_rate"] == 0.0
    assert doc["metrics"]["attack_recall"]["synthetic_attack"] == 1.0


def test_faulty_run_completes_and_quarantines(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=8, n_attack=8)
    out = tmp_path / "run"
    faults = FaultPlan(io_rate=0.3, corrupt_rate=0.4, seed=5)
    metrics = run_pipeline(small_config(corpus, out, faults=faults))

    manifest = json.loads((out / "quarantine.json").read_text())
    assert manifest["total"] == metrics["ingest"]["quarantined"]
    assert metrics["ingest"]["loaded"] + metrics["ingest"]["quarantined"] == 16
    for entry in manifest["entries"]:
        assert entry["code"]  # every quarantined file carries a typed reason
    # training still produced a model and metrics despite the damage
    assert "trace_accuracy" in metrics["metrics"]


def test_all_faulty_corpus_raises_ingest_error(tmp_path):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    for i in range(3):
        (corpus / f"junk_{i}.pkl").write_bytes(b"\x00" * 32)
    with pytest.raises(IngestError):
        run_pipeline(small_config(corpus, tmp_path / "run"))


def test_split_is_stratified_and_leak_free(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=6, n_attack=6)
    from repro.ingest import TraceLoader

    results, _ = TraceLoader(corpus).load_corpus()
    traces = [r.trace for r in results]
    train, test = split_traces(traces, test_frac=0.3, seed=0)
    assert set(train) & set(test) == set()
    assert len(train) + len(test) == len(traces)
    # both classes represented on both sides
    train_labels = {traces[i].is_attack for i in train}
    test_labels = {traces[i].is_attack for i in test}
    assert train_labels == {True, False}
    assert test_labels == {True, False}


def test_cli_exit_codes(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=4, n_attack=4)
    out = tmp_path / "run"
    rc = cli_main(
        [
            "--trace-dir", str(corpus),
            "--out", str(out),
            "--epochs", "5",
            "--n-models", "1",
            "--theta", "5",
        ]
    )
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["loaded"] == 8

    empty = tmp_path / "empty"
    empty.mkdir()
    rc = cli_main(["--trace-dir", str(empty), "--out", str(tmp_path / "run2")])
    assert rc == 2  # typed failure -> nonzero exit, no traceback


def test_cli_faults_flag_round_trip(tmp_path):
    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=4, n_attack=4)
    out = tmp_path / "run"
    rc = cli_main(
        [
            "--trace-dir", str(corpus),
            "--out", str(out),
            "--epochs", "5",
            "--n-models", "1",
            "--theta", "5",
            "--faults", "corrupt=1.0,seed=2",
        ]
    )
    # everything corrupted may still salvage or quarantine; either way the
    # CLI must not crash with an uncaught exception
    assert rc in (0, 2)
    assert (out / "quarantine.json").exists() or rc == 2


def test_fully_quarantined_corpus_exits_nonzero_with_event(
    tmp_path, caplog, capsys, monkeypatch
):
    """Satellite contract: when every file in the corpus is quarantined the
    CLI exits non-zero and a single clear ERROR event says why."""
    import logging

    corpus = tmp_path / "corpus"
    corpus.mkdir()
    for i in range(4):
        (corpus / f"junk_{i}.pkl").write_bytes(b"\xde\xad\xbe\xef" * 16)

    # the repro telemetry root does not propagate (it owns its own stderr
    # handler); re-enable propagation so caplog can observe the event
    monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
    with caplog.at_level(logging.ERROR, logger="repro.pipeline"):
        rc = cli_main(["--trace-dir", str(corpus), "--out", str(tmp_path / "run")])
    assert rc == 2
    events = [
        r for r in caplog.records if "event=pipeline.empty_corpus" in r.getMessage()
    ]
    assert len(events) == 1
    assert events[0].levelno == logging.ERROR
    message = events[0].getMessage()
    assert "files=4" in message and "quarantined=4" in message
    assert "pipeline failed: [ingest_error]" in capsys.readouterr().err


def test_cli_save_artifact_publishes_loadable_store(tmp_path, capsys):
    from repro.model import ArtifactStore

    corpus = tmp_path / "corpus"
    write_synthetic_corpus(corpus, n_benign=4, n_attack=4)
    root = tmp_path / "artifact"
    rc = cli_main(
        [
            "save-artifact",
            "--trace-dir", str(corpus),
            "--out", str(tmp_path / "run"),
            "--artifact-root", str(root),
            "--epochs", "5",
            "--n-models", "2",
            "--theta", "5",
        ]
    )
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["artifact"]["version"].startswith("v0001-")

    store = ArtifactStore(root)
    assert store.current() == summary["artifact"]["version"]
    loaded = store.load()
    assert loaded.n_features == 12
    assert len(loaded.models) == 2
    assert len(loaded.scales) == 2
