"""Parallel ensemble training: ``--train-workers N`` must be semantics-free
(identical models, histories, and metrics for any worker count), and the
opt-in minibatch mode must stay within the golden-corpus accuracy
tolerance."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ModelError
from repro.faults import FaultPlan
from repro.model import HashedPerceptron, train_ensemble
from repro.pipeline import PipelineConfig, run_pipeline

GOLDEN = Path(__file__).resolve().parent / "fixtures" / "golden"

#: minibatch is a different training order; on the 8-trace golden corpus it
#: may flip at most one trace verdict against the online path
GOLDEN_MINIBATCH_TOLERANCE = 0.125


def blobs(n=80, d=16, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack(
        [rng.normal(-1.5, 1.0, size=(n // 2, d)), rng.normal(1.5, 1.0, size=(n // 2, d))]
    )
    y = np.array([-1] * (n // 2) + [1] * (n // 2), dtype=np.int64)
    return X, y


def _ensemble(workers: int):
    X, y = blobs()
    return train_ensemble(
        X,
        y,
        n_features=X.shape[1],
        seeds=[7000, 7001, 7002],
        model_kwargs={"theta": 5.0},
        fit_kwargs={"epochs": 6},
        workers=workers,
    )


def test_worker_count_is_semantics_free_for_training():
    serial = _ensemble(workers=1)
    pooled = _ensemble(workers=4)
    assert len(serial) == len(pooled) == 3
    for a, b in zip(serial, pooled):
        assert a.history == b.history
        np.testing.assert_array_equal(a.model.weights, b.model.weights)
        assert a.model.seed == b.model.seed
        np.testing.assert_array_equal(a.model._salts, b.model._salts)


def test_members_return_in_seed_order():
    members = _ensemble(workers=2)
    assert [m.model.seed for m in members] == [7000, 7001, 7002]
    assert all(m.train_s >= 0.0 for m in members)


def test_pooled_members_match_direct_fit():
    X, y = blobs()
    direct = HashedPerceptron(X.shape[1], theta=5.0, seed=7001)
    direct_history = direct.fit(X, y, epochs=6)
    pooled = _ensemble(workers=3)[1]
    assert pooled.history == direct_history
    np.testing.assert_array_equal(pooled.model.weights, direct.weights)


#: metrics.json fields that may differ between runs: wall-clock only
_VOLATILE = ("created", "elapsed_s", "timings")


def _run(out_dir: Path, **overrides) -> dict:
    config = PipelineConfig(
        trace_dir=str(GOLDEN),
        out_dir=str(out_dir),
        epochs=6,
        seed=7,
        n_models=3,
        theta=5.0,
        **overrides,
    )
    run_pipeline(config)
    metrics = json.loads((out_dir / "metrics.json").read_text())
    for key in _VOLATILE:
        metrics.pop(key, None)
    # the knobs under test are allowed to differ in the echoed config
    metrics["config"].pop("train_workers", None)
    metrics["config"].pop("train_shm", None)
    return metrics


def test_pipeline_train_workers_invariance(tmp_path):
    serial = _run(tmp_path / "w1", train_workers=1)
    pooled = _run(tmp_path / "w4", train_workers=4)
    assert pooled == serial


def test_pipeline_train_workers_model_artifacts_identical(tmp_path):
    _run(tmp_path / "w1", train_workers=1)
    _run(tmp_path / "w4", train_workers=4)
    for k in range(3):
        a = HashedPerceptron.load(tmp_path / "w1" / "models" / f"member_{k}.npz")
        b = HashedPerceptron.load(tmp_path / "w4" / "models" / f"member_{k}.npz")
        np.testing.assert_array_equal(a.weights, b.weights)


def test_minibatch_stays_within_golden_accuracy_tolerance(tmp_path):
    online = _run(tmp_path / "online")
    minibatch = _run(tmp_path / "minibatch", fit_mode="minibatch")
    gap = abs(
        online["metrics"]["trace_accuracy"] - minibatch["metrics"]["trace_accuracy"]
    )
    assert gap <= GOLDEN_MINIBATCH_TOLERANCE


def test_per_member_timings_in_metrics(tmp_path):
    config = PipelineConfig(
        trace_dir=str(GOLDEN), out_dir=str(tmp_path / "run"), epochs=3, n_models=2, theta=5.0
    )
    metrics = run_pipeline(config)
    members = metrics["timings"]["train_members_s"]
    assert len(members) == 2
    assert all(isinstance(v, float) and v >= 0.0 for v in members)


@pytest.mark.parametrize("kernel", ["reference", "blocked"])
def test_pipeline_fit_kernel_is_semantics_free(tmp_path, kernel):
    base = _run(tmp_path / "default")
    variant = _run(tmp_path / kernel, fit_kernel=kernel)
    base["config"].pop("fit_kernel", None)
    variant["config"].pop("fit_kernel", None)
    assert variant == base


# -- shared-memory transport: byte-identical across every worker count ------


def _quarter_faults() -> FaultPlan:
    """The 25% payload-corruption plan the shm bit-identity matrix runs on."""
    return FaultPlan(corrupt_rate=0.25, seed=7)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_shm_pool_matches_serial_blocked_on_golden(tmp_path, workers):
    serial = _run(tmp_path / "serial", train_workers=1, train_shm="off", fit_kernel="blocked")
    shm = _run(
        tmp_path / f"shm{workers}",
        train_workers=workers,
        train_shm="on",
        fit_kernel="blocked",
    )
    assert shm == serial


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_shm_pool_matches_serial_blocked_under_faults(tmp_path, workers):
    serial = _run(
        tmp_path / "serial",
        train_workers=1,
        train_shm="off",
        fit_kernel="blocked",
        faults=_quarter_faults(),
    )
    shm = _run(
        tmp_path / f"shm{workers}",
        train_workers=workers,
        train_shm="on",
        fit_kernel="blocked",
        faults=_quarter_faults(),
    )
    assert shm == serial


def test_shm_model_artifacts_byte_identical(tmp_path):
    _run(tmp_path / "serial", train_workers=1, train_shm="off")
    _run(tmp_path / "shm", train_workers=4, train_shm="on")
    for k in range(3):
        a = HashedPerceptron.load(tmp_path / "serial" / "models" / f"member_{k}.npz")
        b = HashedPerceptron.load(tmp_path / "shm" / "models" / f"member_{k}.npz")
        np.testing.assert_array_equal(a.weights, b.weights)


def test_shm_transport_toggle_is_semantics_free(tmp_path):
    on = _run(tmp_path / "on", train_workers=2, train_shm="on")
    off = _run(tmp_path / "off", train_workers=2, train_shm="off")
    auto = _run(tmp_path / "auto", train_workers=2, train_shm="auto")
    assert on == off == auto


def test_unknown_shm_mode_is_a_typed_error():
    X, y = blobs()
    with pytest.raises(ModelError):
        train_ensemble(
            X, y, n_features=X.shape[1], seeds=[1], workers=2, shm="sideways"
        )
