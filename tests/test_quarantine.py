"""Quarantine manifest: typed reasons, counts, JSON round-trip."""

from __future__ import annotations

import json

from repro.errors import BadHeader, RetryExhausted, TruncatedTrace
from repro.ingest import QuarantineManifest


def test_manifest_records_typed_reasons(tmp_path):
    manifest = QuarantineManifest(root="/corpus")
    manifest.add("/corpus/a.pkl", BadHeader("version 999 is not 4"))
    manifest.add("/corpus/b.pkl", TruncatedTrace("body ends early"))
    manifest.add("/corpus/c.pkl", RetryExhausted("gave up", 4, OSError("disk")))

    assert len(manifest) == 3
    assert manifest.counts() == {"bad_header": 1, "truncated": 1, "retry_exhausted": 1}

    entry = manifest.entries[2]
    assert entry.error == "RetryExhausted"
    assert entry.detail["attempts"] == 4
    assert "disk" in entry.detail["last_error"]

    path = tmp_path / "quarantine.json"
    manifest.write(path)
    doc = json.loads(path.read_text())
    assert doc["total"] == 3
    assert doc["counts"] == manifest.counts()
    assert all(e["code"] and e["message"] for e in doc["entries"])

    reloaded = QuarantineManifest.load(path)
    assert reloaded.counts() == manifest.counts()
    assert [e.path for e in reloaded.entries] == [e.path for e in manifest.entries]


def test_write_is_atomic(tmp_path, monkeypatch):
    """A failed write never clobbers the previous manifest and never leaves
    a temp file behind (tmp + rename, same discipline as the decode cache)."""
    import repro.ingest.quarantine as q

    real_replace = q.os.replace

    path = tmp_path / "quarantine.json"
    first = QuarantineManifest(root="/corpus")
    first.add("/corpus/a.pkl", BadHeader("bad magic"))
    first.write(path)
    before = path.read_text()
    assert [p.name for p in tmp_path.iterdir()] == ["quarantine.json"]

    second = QuarantineManifest(root="/corpus")
    second.add("/corpus/b.pkl", TruncatedTrace("cut short"))

    def explode(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(q.os, "replace", explode)
    try:
        second.write(path)
    except OSError:
        pass
    else:
        raise AssertionError("write should propagate the OSError")
    monkeypatch.setattr(q.os, "replace", real_replace)

    # old manifest intact, no .tmp droppings
    assert path.read_text() == before
    assert [p.name for p in tmp_path.iterdir()] == ["quarantine.json"]

    # and the retry (replace restored) succeeds over the old file
    second.write(path)
    assert json.loads(path.read_text())["total"] == 1
    assert json.loads(path.read_text())["entries"][0]["path"] == "/corpus/b.pkl"
