"""The drift loop at the serving layer: feedback protocol, the reload/score
race, retrain mechanics, and every supervisor failure mode.

The invariant under test throughout: **nothing the online-learning loop does
can hurt the live model.**  A crashed trainer, a hung trainer, a garbage
candidate, a rejected canary — each costs a backoff interval and a counter,
never a response.  The happy path (real subprocess retrain → canary →
atomic promotion) and the rollback path are exercised against a real
:class:`ScoringService` on loopback, same as the rest of the serve suite.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.errors import RetrainFailed
from repro.features import Normalizer
from repro.model import ArtifactStore, HashedPerceptron, margin_scales
from repro.serve import RetrainSupervisor, ScoringService, ServeConfig
from repro.serve.retrain import load_feedback, retrain
from repro.serve.supervisor import (
    FeedbackBuffer,
    FeedbackItem,
    shadow_accuracies,
    write_feedback_npz,
)

N_FEATURES = 12


# ---------------------------------------------------------------------------
# fixtures and helpers
# ---------------------------------------------------------------------------


def separable_rows(label: int, seed: int, n_rows: int = 4) -> np.ndarray:
    """Interval rows drawn far enough apart that a trained model is exact."""
    rng = np.random.default_rng(seed)
    return rng.normal(loc=3.0 * label, scale=0.5, size=(n_rows, N_FEATURES))


def build_store(root, *, n_traces: int = 24):
    """A published artifact trained to perfect separation on its own data."""
    rows_list, labels = [], []
    for i in range(n_traces):
        label = 1 if i % 2 == 0 else -1
        rows_list.append(separable_rows(label, seed=100 + i))
        labels.append(label)
    X = np.vstack(rows_list)
    y_rows = np.concatenate(
        [np.full(r.shape[0], lab, dtype=np.int64) for r, lab in zip(rows_list, labels)]
    )
    norm = Normalizer().fit(X)
    Z = norm.transform(X)
    models = []
    for seed in (1, 2):
        m = HashedPerceptron(N_FEATURES, seed=seed, theta=5.0)
        m.fit(Z, y_rows, epochs=6)
        models.append(m)
    store = ArtifactStore(root)
    result = store.publish(models, norm, margin_scales(models, Z))
    return store, models, norm, result.version


@pytest.fixture()
def drift_root(tmp_path):
    root = tmp_path / "artifact"
    store, models, norm, version = build_store(root)
    return root, store, models, norm, version


def serve_config(root, **overrides) -> ServeConfig:
    base = dict(
        artifact_root=str(root),
        port=0,
        reload_poll_s=0,
        batch_window_ms=1.0,
        idle_timeout_s=10.0,
        request_timeout_s=5.0,
    )
    base.update(overrides)
    return ServeConfig(**base)


async def rpc(port: int, doc: dict, *, timeout: float = 10.0) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(json.dumps(doc).encode() + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        return json.loads(line)
    finally:
        writer.close()


async def http_probe(port: int, target: str) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(f"GET {target} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(1 << 16), timeout=5)
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(body)


def live_labeled_items(service, seeds) -> list[tuple[np.ndarray, int]]:
    """(rows, label) pairs where the label IS the live model's verdict, so
    live shadow accuracy is 1.0 by construction."""
    artifact = service.scorer.artifact
    items = []
    for seed in seeds:
        rows = separable_rows(1 if seed % 2 == 0 else -1, seed=seed)
        _, verdicts = artifact.score_traces(
            rows, np.zeros(rows.shape[0], dtype=np.int64), 1
        )
        items.append((rows, int(verdicts[0])))
    labels = {label for _, label in items}
    assert labels == {-1, 1}, "setup needs both verdict signs"
    return items


def make_supervisor(service, config) -> RetrainSupervisor:
    """A supervisor driven by the test (``_step`` by hand), not by its task."""
    return RetrainSupervisor(service, config)


def echo_candidate_argv(version: str):
    """A 'trainer' that instantly reports an already-published candidate."""
    line = json.dumps({"candidate": version})
    return lambda data_path, base: [sys.executable, "-c", f"print({line!r})"]


# ---------------------------------------------------------------------------
# feedback protocol
# ---------------------------------------------------------------------------


class TestFeedbackProtocol:
    def test_labeled_request_is_acknowledged(self, drift_root):
        root, *_ = drift_root

        async def scenario():
            service = ScoringService(serve_config(root, drift_window=50))
            await service.start()
            try:
                rows = separable_rows(1, seed=500).tolist()
                r = await rpc(
                    service.port,
                    {"id": "fb", "rows": rows, "label": 1, "family": "prime_probe"},
                )
                assert r["ok"] and r["feedback"] is True
                assert r["family"] == "prime_probe"
                assert service.monitor.feedback_total == 1
                # unlabeled requests are scored but carry no feedback ack
                r2 = await rpc(service.port, {"id": "plain", "rows": rows})
                assert r2["ok"] and "feedback" not in r2
                assert service.monitor.scored_total == 2
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    @pytest.mark.parametrize(
        "label", [True, False, 0, 2, "1", 1.0], ids=lambda v: repr(v)
    )
    def test_bad_label_is_a_request_error(self, drift_root, label):
        root, *_ = drift_root

        async def scenario():
            service = ScoringService(serve_config(root, drift_window=50))
            await service.start()
            try:
                rows = separable_rows(1, seed=501).tolist()
                r = await rpc(service.port, {"id": "bad", "rows": rows, "label": label})
                assert r["ok"] is False and r["status"] == 400
                assert "label" in r["error"]["message"]
                # the bad request polluted nothing
                assert service.monitor.feedback_total == 0
                r2 = await rpc(service.port, {"id": "ok", "rows": rows, "label": 1})
                assert r2["ok"] and r2["feedback"] is True
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_non_string_family_rejected(self, drift_root):
        root, *_ = drift_root

        async def scenario():
            service = ScoringService(serve_config(root))
            await service.start()
            try:
                rows = separable_rows(1, seed=502).tolist()
                r = await rpc(service.port, {"id": "f", "rows": rows, "family": 3})
                assert r["ok"] is False and r["status"] == 400
                assert "family" in r["error"]["message"]
            finally:
                await service.shutdown()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# monitor + supervisor wiring through the daemon
# ---------------------------------------------------------------------------


class TestServiceWiring:
    def test_feedback_drives_windows_verdicts_and_pending_retrain(self, drift_root):
        root, *_ = drift_root
        config = serve_config(
            root,
            drift_window=6,
            drift_min_feedback=4,
            drift_psi_threshold=100.0,  # isolate the accuracy verdict
            drift_margin_sigma=1000.0,
            drift_accuracy_floor=0.75,
            drift_rollback_floor=0.0,
            supervise=True,
            retrain_min_traces=10**6,  # verdict stays pending, never retrains
        )

        async def scenario():
            service = ScoringService(config)
            await service.start()
            try:
                # window 0: correct labels — freezes the reference
                for i in range(6):
                    true = 1 if i % 2 == 0 else -1
                    rows = separable_rows(true, seed=600 + i).tolist()
                    r = await rpc(
                        service.port,
                        {"id": f"a{i}", "rows": rows, "label": true, "family": "w"},
                    )
                    assert r["ok"]
                # window 1: every label contradicts the verdict — accuracy 0
                for i in range(6):
                    true = 1 if i % 2 == 0 else -1
                    rows = separable_rows(true, seed=700 + i).tolist()
                    r = await rpc(
                        service.port,
                        {"id": f"b{i}", "rows": rows, "label": -true, "family": "w"},
                    )
                    assert r["ok"]
                status, metrics = await http_probe(service.port, "/metricsz")
                assert status == 200
                assert metrics["drift"]["windows_evaluated"] == 2
                assert metrics["drift"]["drift_verdicts"] == 1
                assert metrics["supervisor"]["feedback_traces"] == 12
                assert metrics["supervisor"]["state"] == "idle"
                assert service.supervisor._pending_retrain is True
                assert service.supervisor.stats.retrains_started == 0
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_metricsz_exposes_loop_sections(self, drift_root):
        root, *_, version = drift_root
        config = serve_config(root, drift_window=10, supervise=True)

        async def scenario():
            service = ScoringService(config)
            await service.start()
            try:
                status, metrics = await http_probe(service.port, "/metricsz")
                assert status == 200
                assert metrics["artifact"] == version
                assert metrics["uptime_s"] >= 0
                drift = metrics["drift"]
                assert drift["window_size"] == 10 and drift["window_fill"] == 0
                sup = metrics["supervisor"]
                for key in (
                    "retrains_started",
                    "promotions",
                    "rollbacks",
                    "last_retrain_at",
                    "last_rollback_at",
                    "feedback_buffered",
                    "backoff_remaining_s",
                ):
                    assert key in sup
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_loop_disabled_by_default(self, drift_root):
        root, *_ = drift_root

        async def scenario():
            service = ScoringService(serve_config(root))
            await service.start()
            try:
                assert service.monitor is None and service.supervisor is None
                _, metrics = await http_probe(service.port, "/metricsz")
                assert metrics["drift"] is None and metrics["supervisor"] is None
            finally:
                await service.shutdown()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# the reload/score race
# ---------------------------------------------------------------------------


class TestReloadRace:
    def test_current_swap_mid_batch_never_splits_a_batch(self, drift_root):
        root, store, models, norm, v1 = drift_root

        async def scenario():
            service = ScoringService(
                serve_config(root, batch_window_ms=200.0, max_batch=8)
            )
            await service.start()
            entered = threading.Event()
            release = threading.Event()
            original = service.scorer.score_batch
            wedged_ids: list[str] = []

            def wedged(batch):
                wedged_ids.extend(req.req_id for req in batch)
                entered.set()
                assert release.wait(10), "test never released the batch"
                return original(batch)

            service.scorer.score_batch = wedged
            try:
                # one request per connection: the NDJSON protocol is
                # request/response sequential per connection, so concurrent
                # in-flight requests (one coalesced batch) need 3 sockets
                conns = [
                    await asyncio.open_connection("127.0.0.1", service.port)
                    for _ in range(3)
                ]
                try:
                    for i, (_, writer) in enumerate(conns):
                        writer.write(
                            json.dumps(
                                {
                                    "id": f"r{i}",
                                    "rows": separable_rows(1, seed=800 + i).tolist(),
                                }
                            ).encode()
                            + b"\n"
                        )
                        await writer.drain()
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, entered.wait, 10)
                    # batch is wedged inside the executor: publish a new
                    # version and swap CURRENT under it
                    v2 = store.publish(models, norm, [1.0, 1.0]).version
                    service._maybe_reload()
                    assert service.scorer.artifact.version == v2
                    release.set()
                    answered = [
                        json.loads(
                            await asyncio.wait_for(reader.readline(), timeout=10)
                        )
                        for reader, _ in conns
                    ]
                finally:
                    for _, writer in conns:
                        writer.close()
                # the wedged batch finished whole on the artifact it started
                # with — the swap never split it or mixed models mid-batch;
                # requests the batcher had not yet claimed score on the new one
                assert [r["ok"] for r in answered] == [True] * 3
                assert wedged_ids, "no batch was in flight during the swap"
                for r in answered:
                    expected = v1 if r["id"] in wedged_ids else v2
                    assert r["artifact"] == expected, r
                # traffic after the swap scores on the new version
                r = await rpc(
                    service.port,
                    {"id": "post", "rows": separable_rows(1, seed=900).tolist()},
                )
                assert r["ok"] and r["artifact"] == v2
                assert service.stats.reloads == 1
            finally:
                release.set()
                await service.shutdown()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# retrain mechanics (in-process)
# ---------------------------------------------------------------------------


class TestRetrain:
    def test_feedback_npz_round_trip(self, tmp_path):
        items = [
            FeedbackItem(rows=separable_rows(1, seed=1, n_rows=3), label=1, family="a"),
            FeedbackItem(rows=separable_rows(-1, seed=2, n_rows=5), label=-1, family="b"),
        ]
        path = tmp_path / "feedback.npz"
        write_feedback_npz(path, items)
        X, groups, labels = load_feedback(path)
        assert X.shape == (8, N_FEATURES)
        assert groups.tolist() == [0] * 3 + [1] * 5
        assert labels.tolist() == [1, -1]

    def test_load_feedback_rejects_malformed_dumps(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            X=np.ones((4, N_FEATURES)),
            groups=np.zeros(3, dtype=np.int64),
            labels=np.ones(1, dtype=np.int64),
        )
        with pytest.raises(RetrainFailed, match="groups shape"):
            load_feedback(path)
        np.savez(
            path,
            X=np.ones((2, N_FEATURES)),
            groups=np.zeros(2, dtype=np.int64),
            labels=np.zeros(1, dtype=np.int64),
        )
        with pytest.raises(RetrainFailed, match="labels must be"):
            load_feedback(path)

    def test_partial_retrain_publishes_candidate_without_touching_current(
        self, drift_root, tmp_path
    ):
        root, store, *_ , v1 = drift_root
        items = [
            FeedbackItem(
                rows=separable_rows(1 if i % 2 == 0 else -1, seed=300 + i),
                label=1 if i % 2 == 0 else -1,
            )
            for i in range(8)
        ]
        path = tmp_path / "feedback.npz"
        write_feedback_npz(path, items)
        candidate = retrain(str(root), v1, str(path), mode="partial", passes=2, seed=0)
        assert candidate != v1
        assert store.current() == v1  # CURRENT untouched by candidate publish
        loaded = store.load(candidate)
        meta = loaded.manifest["meta"]
        assert meta["retrained_from"] == v1
        assert meta["retrain_mode"] == "partial"
        assert meta["feedback_traces"] == 8
        cand_acc, live_acc = shadow_accuracies(loaded, store.load(v1), items)
        assert cand_acc >= live_acc - 0.01

    def test_retrain_validates_mode_and_features(self, drift_root, tmp_path):
        root, _, *_ , v1 = drift_root
        path = tmp_path / "feedback.npz"
        write_feedback_npz(path, [FeedbackItem(rows=np.ones((2, 5)), label=1)])
        with pytest.raises(RetrainFailed, match="unknown retrain mode"):
            retrain(str(root), v1, str(path), mode="magic")
        with pytest.raises(RetrainFailed, match="features"):
            retrain(str(root), v1, str(path), mode="partial")
        with pytest.raises(RetrainFailed, match="unknown shm mode"):
            retrain(str(root), v1, str(path), mode="full", shm="sideways")

    def _feedback_path(self, tmp_path) -> "Path":
        items = [
            FeedbackItem(
                rows=separable_rows(1 if i % 2 == 0 else -1, seed=300 + i),
                label=1 if i % 2 == 0 else -1,
            )
            for i in range(8)
        ]
        path = tmp_path / "feedback.npz"
        write_feedback_npz(path, items)
        return path

    def test_full_retrain_shm_pool_is_bit_identical_to_serial(
        self, drift_root, tmp_path
    ):
        """`--train-workers N --train-shm on` full retrains must publish the
        byte-identical candidate the serial non-shm path publishes."""
        root, store, *_ , v1 = drift_root
        path = self._feedback_path(tmp_path)
        serial = retrain(
            str(root), v1, str(path), mode="full", passes=3, seed=5,
            workers=1, shm="off",
        )
        base_weights = [m.weights.copy() for m in store.load(serial).models]
        for workers, shm in ((2, "on"), (2, "off"), (4, "auto")):
            candidate = retrain(
                str(root), v1, str(path), mode="full", passes=3, seed=5,
                workers=workers, shm=shm,
            )
            models = store.load(candidate).models
            for got, want in zip(models, base_weights):
                np.testing.assert_array_equal(got.weights, want)

    def test_full_retrain_subprocess_cli_matches_in_process(
        self, drift_root, tmp_path
    ):
        """The supervisor's actual subprocess invocation with shm flags stays
        bit-identical to the in-process non-shm retrain."""
        import os
        import subprocess

        root, store, *_ , v1 = drift_root
        path = self._feedback_path(tmp_path)
        serial = retrain(
            str(root), v1, str(path), mode="full", passes=3, seed=5,
            workers=1, shm="off",
        )
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.serve.retrain",
                "--artifact-root", str(root), "--base", v1,
                "--data", str(path), "--mode", "full",
                "--passes", "3", "--seed", "5",
                "--train-workers", "2", "--train-shm", "on",
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        candidate = json.loads(proc.stdout.strip().splitlines()[-1])["candidate"]
        for got, want in zip(
            store.load(candidate).models, store.load(serial).models
        ):
            np.testing.assert_array_equal(got.weights, want.weights)


# ---------------------------------------------------------------------------
# supervisor failure modes — each must leave the live model untouched
# ---------------------------------------------------------------------------


def supervisor_config(root, **overrides) -> ServeConfig:
    base = dict(
        retrain_min_traces=2,
        retrain_backoff_s=30.0,
        retrain_timeout_s=60.0,
        canary_min_traces=4,
        canary_timeout_s=60.0,
    )
    base.update(overrides)
    return serve_config(root, **base)


def feed(sup, items):
    for rows, label in items:
        sup.add_feedback(rows, label, None)


class TestSupervisorFailureModes:
    def test_subprocess_crash_backs_off_and_keeps_live_model(self, drift_root):
        root, store, *_ , v1 = drift_root

        async def scenario():
            service = ScoringService(supervisor_config(root))
            await service.start()
            try:
                sup = make_supervisor(service, service.config)
                sup._retrain_argv = lambda data_path, base: [
                    sys.executable,
                    "-c",
                    "import sys; sys.stderr.write('trainer blew up'); sys.exit(3)",
                ]
                feed(sup, live_labeled_items(service, range(4)))
                sup._pending_retrain = True
                await sup._step()
                assert sup.stats.retrains_started == 1
                assert sup.stats.retrains_failed == 1
                assert sup.stats.consecutive_failures == 1
                assert "trainer blew up" in sup.stats.last_error
                assert sup.stats.state == "idle" and sup._canary is None
                # the live model and the CURRENT pointer are untouched
                assert service.scorer.artifact.version == v1
                assert store.current() == v1
                # backoff armed; the retry stays pending but does not run
                assert sup.backoff_remaining() > 0
                assert sup._pending_retrain is True
                await sup._step()
                assert sup.stats.retrains_started == 1
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_hung_subprocess_is_killed_on_timeout(self, drift_root):
        root, store, *_ , v1 = drift_root

        async def scenario():
            service = ScoringService(supervisor_config(root, retrain_timeout_s=0.3))
            await service.start()
            try:
                sup = make_supervisor(service, service.config)
                sup._retrain_argv = lambda data_path, base: [
                    sys.executable,
                    "-c",
                    "import time; time.sleep(60)",
                ]
                feed(sup, live_labeled_items(service, range(4)))
                sup._pending_retrain = True
                await sup._step()
                assert sup.stats.retrain_timeouts == 1
                assert sup.stats.retrains_failed == 1
                assert "exceeded" in sup.stats.last_error
                assert service.scorer.artifact.version == v1
                assert store.current() == v1
                assert sup.backoff_remaining() > 0
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_garbage_stdout_is_a_failed_retrain(self, drift_root):
        root, store, *_ , v1 = drift_root

        async def scenario():
            service = ScoringService(supervisor_config(root))
            await service.start()
            try:
                sup = make_supervisor(service, service.config)
                sup._retrain_argv = lambda data_path, base: [
                    sys.executable,
                    "-c",
                    "print('training went great, trust me')",
                ]
                feed(sup, live_labeled_items(service, range(4)))
                sup._pending_retrain = True
                await sup._step()
                assert sup.stats.retrains_failed == 1
                assert "no candidate" in sup.stats.last_error
                assert service.scorer.artifact.version == v1
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_backoff_doubles_per_consecutive_failure(self, drift_root):
        root, *_ = drift_root

        async def scenario():
            service = ScoringService(
                supervisor_config(root, retrain_backoff_s=10.0, retrain_backoff_max_s=25.0)
            )
            await service.start()
            try:
                sup = make_supervisor(service, service.config)
                sup._retrain_argv = lambda data_path, base: [
                    sys.executable, "-c", "raise SystemExit(1)"
                ]
                feed(sup, live_labeled_items(service, range(4)))
                observed = []
                for _ in range(3):
                    sup._pending_retrain = True
                    sup._backoff_until_mono = 0.0  # pretend the wait elapsed
                    await sup._step()
                    observed.append(sup.backoff_remaining())
                assert 9.0 < observed[0] <= 10.0
                assert 19.0 < observed[1] <= 20.0
                assert 24.0 < observed[2] <= 25.0  # capped
                assert sup.stats.consecutive_failures == 3
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_canary_rejection_discards_candidate_and_backs_off(self, drift_root):
        root, store, models, norm, v1 = drift_root

        async def scenario():
            service = ScoringService(supervisor_config(root))
            await service.start()
            try:
                # a candidate that is catastrophically worse than live:
                # untrained members score margin 0 everywhere -> verdict -1
                zeroed = [HashedPerceptron(N_FEATURES, seed=s, theta=5.0) for s in (7, 8)]
                bad = store.publish(zeroed, norm, [1.0, 1.0], set_current=False).version
                sup = make_supervisor(service, service.config)
                sup._retrain_argv = echo_candidate_argv(bad)
                feed(sup, live_labeled_items(service, range(4)))
                sup._pending_retrain = True
                await sup._step()  # retrain "succeeds" -> canary opens
                assert sup.stats.state == "canary"
                assert sup.stats.candidate == bad
                assert sup.stats.canaries_started == 1
                feed(sup, live_labeled_items(service, range(10, 14)))
                await sup._step()  # gate evaluates and rejects
                assert sup.stats.canary_rejections == 1
                assert sup.stats.promotions == 0
                assert sup.stats.state == "idle" and sup._canary is None
                assert "canary rejected" in sup.stats.last_error
                # rejection counts toward backoff but not as a failed retrain
                assert sup.stats.retrains_failed == 0
                assert sup.backoff_remaining() > 0
                # live model and pointer untouched; candidate kept on disk
                assert service.scorer.artifact.version == v1
                assert store.current() == v1
                assert bad in store.versions()
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_canary_times_out_without_labeled_traffic(self, drift_root):
        root, store, models, norm, v1 = drift_root

        async def scenario():
            service = ScoringService(
                supervisor_config(root, canary_timeout_s=0.0)
            )
            await service.start()
            try:
                cand = store.publish(models, norm, [1.0, 1.0], set_current=False).version
                sup = make_supervisor(service, service.config)
                sup._retrain_argv = echo_candidate_argv(cand)
                feed(sup, live_labeled_items(service, range(4)))
                sup._pending_retrain = True
                await sup._step()  # opens the canary; buffer snapshot only
                assert sup.stats.state == "canary"
                sup._canary.items.clear()  # no labeled traffic arrives
                await sup._step()
                assert sup.stats.canary_rejections == 1
                assert "no labeled canary traffic" in sup.stats.last_error
                assert service.scorer.artifact.version == v1
            finally:
                await service.shutdown()

        asyncio.run(scenario())


class TestPromotionAndRollback:
    def test_real_retrain_canary_and_promotion(self, drift_root):
        """End to end on real machinery: the actual ``repro.serve.retrain``
        subprocess trains a candidate from feedback, the canary gate passes,
        and promotion atomically swaps CURRENT + the in-process scorer."""
        root, store, *_ , v1 = drift_root
        config = supervisor_config(
            root, drift_window=50, retrain_min_traces=4, canary_min_traces=4
        )

        async def scenario():
            service = ScoringService(config)
            await service.start()
            try:
                sup = make_supervisor(service, service.config)
                feed(sup, live_labeled_items(service, range(8)))
                sup._pending_retrain = True
                await sup._step()  # real subprocess retrain
                assert sup.stats.retrains_succeeded == 1, sup.stats.last_error
                assert sup.stats.state == "canary"
                candidate = sup.stats.candidate
                assert candidate is not None and candidate != v1
                assert store.current() == v1  # not promoted yet
                feed(sup, live_labeled_items(service, range(20, 24)))
                await sup._step()  # gate passes -> promote
                assert sup.stats.promotions == 1
                assert sup.stats.last_promotion_at is not None
                assert store.current() == candidate
                assert service.scorer.artifact.version == candidate
                assert service.stats.reloads == 1
                # promotion resets the drift reference: new model, new normal
                assert service.monitor.reference is None
                # and serving still answers on the promoted model
                r = await rpc(
                    service.port,
                    {"id": "after", "rows": separable_rows(1, seed=999).tolist()},
                )
                assert r["ok"] and r["artifact"] == candidate
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_rollback_restores_previous_version_and_pins_out_bad_one(self, drift_root):
        root, store, models, norm, v1 = drift_root

        async def scenario():
            v2 = store.publish(models, norm, [1.0, 1.0]).version  # now CURRENT
            service = ScoringService(supervisor_config(root))
            await service.start()
            try:
                assert service.scorer.artifact.version == v2
                sup = make_supervisor(service, service.config)
                sup._pending_rollback = True
                await sup._step()
                assert sup.stats.rollbacks == 1
                assert sup.stats.last_rollback_at is not None
                assert store.current() == v1
                assert service.scorer.artifact.version == v1
                # the rolled-back version is fenced off from hot reload
                assert v2 in service._bad_versions
                service._maybe_reload()
                assert service.scorer.artifact.version == v1
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_rollback_preempts_inflight_canary(self, drift_root):
        root, store, models, norm, v1 = drift_root

        async def scenario():
            v2 = store.publish(models, norm, [1.0, 1.0]).version
            service = ScoringService(supervisor_config(root))
            await service.start()
            try:
                cand = store.publish(models, norm, [1.0, 1.0], set_current=False).version
                sup = make_supervisor(service, service.config)
                sup._retrain_argv = echo_candidate_argv(cand)
                feed(sup, live_labeled_items(service, range(4)))
                sup._pending_retrain = True
                await sup._step()
                assert sup.stats.state == "canary"
                sup._pending_rollback = True  # monitor says: live model is bad
                await sup._step()
                # the canary (trained against a distrusted model) is dropped,
                # the rollback wins
                assert sup._canary is None
                assert sup.stats.promotions == 0
                assert sup.stats.rollbacks == 1
                assert store.current() == v1
                assert service.scorer.artifact.version == v1
            finally:
                await service.shutdown()

        asyncio.run(scenario())

    def test_rollback_with_no_other_version_keeps_serving(self, drift_root):
        root, store, *_ , v1 = drift_root

        async def scenario():
            service = ScoringService(supervisor_config(root))
            await service.start()
            try:
                sup = make_supervisor(service, service.config)
                sup._pending_rollback = True
                await sup._step()
                assert sup.stats.rollbacks == 0
                assert "rollback impossible" in sup.stats.last_error
                assert service.scorer.artifact.version == v1
                r = await rpc(
                    service.port,
                    {"id": "still", "rows": separable_rows(1, seed=42).tolist()},
                )
                assert r["ok"]
            finally:
                await service.shutdown()

        asyncio.run(scenario())


class TestFeedbackBuffer:
    def test_ring_evicts_oldest(self):
        buf = FeedbackBuffer(3)
        for k in range(5):
            buf.add(FeedbackItem(rows=np.ones((1, 2)), label=1, family=str(k)))
        assert len(buf) == 3
        assert [it.family for it in buf.snapshot()] == ["2", "3", "4"]
