"""Process-based parallel corpus ingestion.

:func:`load_corpus_pooled` fans the corpus walk out over a
``ProcessPoolExecutor`` while keeping every observable output identical to
the serial :meth:`~repro.ingest.loader.TraceLoader.load_corpus` walk:

- **Ordered results.**  Files are submitted in sorted-path order and results
  are consumed with ``executor.map``, which preserves submission order no
  matter which worker finishes first.  The quarantine manifest therefore
  lists entries in the same order a serial run would.
- **Deterministic fault injection.**  Every worker builds its own
  :class:`~repro.faults.FaultInjector` from the same :class:`FaultPlan`, and
  the injector derives each decision from ``(plan seed, path, attempt)`` —
  never from worker identity or shared RNG state — so a file draws the exact
  same faults whichever worker it lands on and ``REPRO_FAULTS`` replays stay
  deterministic for any ``--workers`` value.
- **Typed failures only.**  Workers catch exactly the exceptions the serial
  loader quarantines (:class:`TraceDecodeError`, :class:`RetryExhausted`)
  and ship their ``describe()`` dicts back; anything else is a bug and
  propagates out of the pool.

Caching composes: each worker opens the same cache *root* and the cache's
atomic entry writes make concurrent stores of the same key safe (last
``os.replace`` wins with identical content, since keys are content hashes).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from ..errors import RetryExhausted, TraceDecodeError
from ..faults import FaultPlan
from ..telemetry import get_logger, log_event
from .loader import LoadResult, TraceLoader
from .quarantine import QuarantineManifest
from .retry import RetryPolicy

logger = get_logger("repro.ingest.pool")

_WORKER_LOADER: TraceLoader | None = None


def _init_worker(
    root: str,
    pattern: str,
    retry_policy: RetryPolicy | None,
    decode_timeout_s: float,
    faults: FaultPlan | None,
    cache_root: str | None,
) -> None:
    """Build this worker's loader once; every task reuses it."""
    global _WORKER_LOADER
    cache = None
    if cache_root is not None:
        from ..cache import FeatureCache

        cache = FeatureCache(cache_root)
    _WORKER_LOADER = TraceLoader(
        root,
        pattern=pattern,
        retry_policy=retry_policy,
        decode_timeout_s=decode_timeout_s,
        faults=faults,
        cache=cache,
    )


def _load_one(path_str: str) -> tuple[str, str, object]:
    """Worker task: load one file, returning a picklable outcome tuple."""
    assert _WORKER_LOADER is not None, "worker initializer did not run"
    try:
        result = _WORKER_LOADER.load(path_str)
    except (TraceDecodeError, RetryExhausted) as exc:
        return ("quarantine", path_str, exc.describe())
    return ("ok", path_str, result)


def load_corpus_pooled(
    root,
    *,
    workers: int = 1,
    pattern: str = "*.pkl",
    retry_policy: RetryPolicy | None = None,
    decode_timeout_s: float = 10.0,
    faults: FaultPlan | None = None,
    cache_root=None,
) -> tuple[list[LoadResult], QuarantineManifest]:
    """Load a corpus with ``workers`` processes (``<= 1`` runs serially
    in-process).  Semantics match ``TraceLoader.load_corpus`` exactly; only
    wall-clock changes."""
    cache_root = str(cache_root) if cache_root is not None else None
    if workers <= 1:
        cache = None
        if cache_root is not None:
            from ..cache import FeatureCache

            cache = FeatureCache(cache_root)
        loader = TraceLoader(
            root,
            pattern=pattern,
            retry_policy=retry_policy,
            decode_timeout_s=decode_timeout_s,
            faults=faults,
            cache=cache,
        )
        return loader.load_corpus()

    paths = sorted(Path(root).glob(pattern))
    quarantine = QuarantineManifest(root=str(Path(root)))
    results: list[LoadResult] = []
    t_start = time.monotonic()
    n_workers = max(1, min(workers, len(paths))) if paths else 1
    log_event(logger, "pool.start", workers=n_workers, files=len(paths), root=str(root))
    if paths:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(str(root), pattern, retry_policy, decode_timeout_s, faults, cache_root),
        ) as executor:
            chunksize = max(1, len(paths) // (n_workers * 4))
            outcomes = executor.map(_load_one, (str(p) for p in paths), chunksize=chunksize)
            for status, path_str, payload in outcomes:
                name = Path(path_str).name
                if status == "quarantine":
                    entry = quarantine.add_described(path_str, payload)
                    log_event(
                        logger,
                        "ingest.quarantine",
                        path=name,
                        code=entry.code,
                        error=entry.error,
                    )
                    continue
                assert isinstance(payload, LoadResult)
                if payload.report.degraded:
                    log_event(
                        logger,
                        "ingest.degraded",
                        path=name,
                        mode=payload.report.mode,
                        notes=";".join(payload.report.notes) or "-",
                    )
                results.append(payload)
    log_event(
        logger,
        "pool.done",
        workers=n_workers,
        loaded=len(results),
        quarantined=len(quarantine),
        cache_hits=sum(1 for r in results if r.from_cache),
        elapsed=f"{time.monotonic() - t_start:.3f}",
    )
    log_event(
        logger,
        "ingest.done",
        root=str(root),
        loaded=len(results),
        quarantined=len(quarantine),
    )
    return results, quarantine
