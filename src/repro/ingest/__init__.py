"""Ingestion layer: fault-tolerant corpus loading.

Transient I/O errors are retried with exponential backoff
(:mod:`repro.ingest.retry`); undecodable files are recorded in a quarantine
manifest (:mod:`repro.ingest.quarantine`) and skipped -- one bad file never
aborts a run (:mod:`repro.ingest.loader`).
"""

from .loader import LoadResult, TraceLoader
from .pool import load_corpus_pooled
from .quarantine import QuarantineManifest
from .retry import RetryPolicy, retry_call

__all__ = [
    "TraceLoader",
    "LoadResult",
    "QuarantineManifest",
    "RetryPolicy",
    "retry_call",
    "load_corpus_pooled",
]
