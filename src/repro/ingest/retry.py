"""Bounded retry with exponential backoff for transient failures.

Only exceptions named in the policy's ``retry_on`` tuple are retried --
anything else (in particular :class:`~repro.errors.TraceDecodeError`, which is
a permanent per-file condition) propagates immediately.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import RetryExhausted

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    #: multiplier applied per attempt
    backoff: float = 2.0
    #: fraction of the delay drawn uniformly at random and added, to avoid
    #: thundering herds when many workers retry the same backend
    jitter: float = 0.25
    retry_on: tuple[type[BaseException], ...] = (OSError,)

    def delay_for(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff delay after failed attempt ``attempt`` (0-based)."""
        delay = min(self.base_delay * (self.backoff**attempt), self.max_delay)
        if self.jitter > 0:
            delay += delay * self.jitter * (rng or random).random()
        return delay


def retry_call(
    fn: Callable[[int], T],
    policy: RetryPolicy | None = None,
    *,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    rng: random.Random | None = None,
) -> T:
    """Call ``fn(attempt)`` until it succeeds or the policy is exhausted.

    ``sleep`` and ``rng`` are injectable for deterministic tests.  Raises
    :class:`RetryExhausted` (carrying the last error) when every attempt
    failed with a retryable exception.
    """
    policy = policy or RetryPolicy()
    if policy.attempts < 1:
        raise ValueError("RetryPolicy.attempts must be >= 1")
    last: BaseException | None = None
    for attempt in range(policy.attempts):
        try:
            return fn(attempt)
        except policy.retry_on as exc:
            last = exc
            if attempt + 1 >= policy.attempts:
                break
            delay = policy.delay_for(attempt, rng)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
    raise RetryExhausted(
        f"gave up after {policy.attempts} attempts: {last}", policy.attempts, last
    )
