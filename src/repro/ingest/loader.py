"""The corpus loader: reads trace-cache files with retry, per-file decode
timeouts, fault injection, optional content-addressed caching, and
skip-and-continue quarantine semantics."""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..errors import RetryExhausted, TraceDecodeError
from ..faults import FaultInjector, FaultPlan
from ..sim.trace import DecodeReport, Trace, decode_trace
from ..telemetry import get_logger, log_event
from .quarantine import QuarantineManifest
from .retry import RetryPolicy, retry_call

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..cache import FeatureCache

logger = get_logger("repro.ingest")


@dataclass
class LoadResult:
    path: str
    trace: Trace
    report: DecodeReport
    #: True when the decode was served by the feature cache
    from_cache: bool = False


class TraceLoader:
    """Walks a trace-cache directory and yields decoded traces.

    Failure policy:

    - ``OSError`` while reading bytes is treated as transient and retried
      with exponential backoff; exhaustion quarantines the file.
    - :class:`TraceDecodeError` (any subclass) is permanent: the file is
      quarantined immediately, never retried.
    - Anything else is a bug and propagates.

    When a :class:`~repro.cache.FeatureCache` is attached, the loader keys it
    on the exact bytes it is about to decode (after fault injection), so a
    warm cache replays decodes without ever invoking the salvage parser while
    injected corruption still keys to its own (corrupt) content address.
    """

    def __init__(
        self,
        root,
        *,
        pattern: str = "*.pkl",
        retry_policy: RetryPolicy | None = None,
        decode_timeout_s: float = 10.0,
        faults: FaultPlan | None = None,
        cache: "FeatureCache | None" = None,
    ):
        self.root = Path(root)
        self.pattern = pattern
        self.retry_policy = retry_policy or RetryPolicy()
        self.decode_timeout_s = decode_timeout_s
        self.injector = FaultInjector(faults) if faults and faults.active else None
        self.cache = cache

    def paths(self) -> list[Path]:
        return sorted(self.root.glob(self.pattern))

    # -- single file -----------------------------------------------------

    def _read_bytes(self, path: Path) -> bytes:
        def attempt(n: int) -> bytes:
            if self.injector is not None:
                self.injector.maybe_io_error(str(path), n)
            return path.read_bytes()

        def on_retry(n: int, exc: BaseException, delay: float) -> None:
            log_event(
                logger,
                "ingest.retry",
                path=path.name,
                attempt=n,
                delay=f"{delay:.3f}",
                error=type(exc).__name__,
            )

        return retry_call(attempt, self.retry_policy, on_retry=on_retry)

    def load(self, path) -> LoadResult:
        """Load one file.  Raises ``RetryExhausted`` or ``TraceDecodeError``."""
        path = Path(path)
        data = self._read_bytes(path)
        if self.injector is not None:
            data = self.injector.corrupt(data, str(path))
        key = None
        if self.cache is not None:
            key = self.cache.key(data)
            cached = self.cache.get(key, path=str(path))
            if cached is not None:
                trace, report = cached
                return LoadResult(path=str(path), trace=trace, report=report, from_cache=True)
        deadline = time.monotonic() + self.decode_timeout_s
        trace, report = decode_trace(data, path=str(path), deadline=deadline)
        if self.cache is not None and key is not None:
            self.cache.put(key, trace, report)
        return LoadResult(path=str(path), trace=trace, report=report)

    # -- whole corpus ----------------------------------------------------

    def iter_corpus(self, quarantine: QuarantineManifest) -> Iterator[LoadResult]:
        """Yield a ``LoadResult`` per decodable file; quarantine the rest."""
        for path in self.paths():
            try:
                result = self.load(path)
            except (TraceDecodeError, RetryExhausted) as exc:
                entry = quarantine.add(str(path), exc)
                log_event(
                    logger,
                    "ingest.quarantine",
                    path=path.name,
                    code=entry.code,
                    error=entry.error,
                )
                continue
            if result.report.degraded:
                log_event(
                    logger,
                    "ingest.degraded",
                    path=path.name,
                    mode=result.report.mode,
                    notes=";".join(result.report.notes) or "-",
                )
            yield result

    def load_corpus(self) -> tuple[list[LoadResult], QuarantineManifest]:
        quarantine = QuarantineManifest(root=str(self.root))
        results = list(self.iter_corpus(quarantine))
        log_event(
            logger,
            "ingest.done",
            root=str(self.root),
            loaded=len(results),
            quarantined=len(quarantine),
        )
        return results, quarantine
