"""Quarantine manifest: a machine-readable record of every input the ingest
layer gave up on, with its typed failure reason from :mod:`repro.errors`."""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ReproError

MANIFEST_VERSION = 1


@dataclass
class QuarantineEntry:
    path: str
    code: str
    error: str
    message: str
    detail: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        out = {
            "path": self.path,
            "code": self.code,
            "error": self.error,
            "message": self.message,
        }
        if self.detail:
            out["detail"] = self.detail
        return out


class QuarantineManifest:
    """Accumulates quarantined files for one ingest run."""

    def __init__(self, root: str = ""):
        self.root = root
        self.entries: list[QuarantineEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, path: str, exc: BaseException) -> QuarantineEntry:
        if isinstance(exc, ReproError):
            return self.add_described(path, exc.describe())
        # pragma-style fallback: ingest only quarantines typed errors
        return self.add_described(
            path, {"code": "untyped", "type": type(exc).__name__, "message": str(exc)}
        )

    def add_described(self, path: str, desc: dict) -> QuarantineEntry:
        """Record a failure from its :meth:`ReproError.describe` dict.  This
        is the wire format worker processes ship back to the parent, so a
        pooled run writes the same manifest a serial run would."""
        desc = dict(desc)
        code = str(desc.pop("code", "untyped"))
        error = str(desc.pop("type", "Exception"))
        message = str(desc.pop("message", ""))
        entry = QuarantineEntry(path=str(path), code=code, error=error, message=message, detail=desc)
        self.entries.append(entry)
        return entry

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for entry in self.entries:
            out[entry.code] = out.get(entry.code, 0) + 1
        return out

    def to_json(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "root": self.root,
            "total": len(self.entries),
            "counts": self.counts(),
            "entries": [entry.to_json() for entry in self.entries],
        }

    def write(self, path) -> None:
        """Atomically write the manifest (tmp file + ``os.replace``, the same
        pattern as :mod:`repro.cache`): a crash mid-write leaves either the
        previous manifest or none — never a truncated JSON document."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(self.to_json(), indent=2, sort_keys=False) + "\n")
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path) -> "QuarantineManifest":
        doc = json.loads(Path(path).read_text())
        manifest = cls(root=doc.get("root", ""))
        for raw in doc.get("entries", []):
            manifest.entries.append(
                QuarantineEntry(
                    path=raw["path"],
                    code=raw["code"],
                    error=raw["error"],
                    message=raw["message"],
                    detail=raw.get("detail", {}),
                )
            )
        return manifest
