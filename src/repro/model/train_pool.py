"""Process-based parallel ensemble training with a zero-copy fast path.

:func:`train_ensemble` fits every hash-seeded ensemble member and returns
them **in model order**, with per-member training seconds and update
histories.  Worker count is semantics-free exactly like the ingest pool:
each member's training depends only on its own seed (hash salts, shuffle
order, and weights all derive from it, never from worker identity or shared
state), so ``workers=N`` produces bit-identical models to ``workers=1`` for
any ``N`` — the train-pool regression tests pin this.

Two pooled transports exist, selected by ``shm``:

* ``shm="on"`` (and the ``"auto"`` default when pooled): the parent
  quantizes the feature matrix **once** into the salt-free uint8 bins
  matrix every member shares, puts bins + labels into
  ``multiprocessing.shared_memory`` via :mod:`repro.model.shm`, and ships
  workers only segment names, dtypes/shapes, and member seeds.  Workers
  attach read-only views and fit against them directly — no per-worker
  matrix pickle, no per-member re-quantize.  The parent owns segment
  lifetime: a ``finally`` unlinks everything on success, worker crash, and
  ``KeyboardInterrupt`` alike, which the resource-leak tests pin.
* ``shm="off"``: the legacy transport — the float64 matrix is broadcast
  once per worker through the pool initializer (pickled per worker).

A worker that dies mid-fit (e.g. SIGKILL) or raises degrades gracefully:
the pool logs a ``train_pool.worker_lost`` WARNING and refits that member
in-process, producing the identical final model because member fits are
pure functions of ``(seed, data)``.

Workers ship back ``(weights, history, elapsed)`` rather than whole models;
the parent reconstructs each member from its seed (which regenerates the
identical salts) and installs the trained weights.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from ..telemetry import get_logger, log_event
from .perceptron import HashedPerceptron, quantize_bins
from .shm import AttachedArrays, SharedArrays

logger = get_logger("repro.model.train_pool")

#: accepted values for ``train_ensemble(shm=...)``
SHM_CHOICES = ("auto", "on", "off")

#: failure-injection hooks for the crash/leak test suites: set to a member
#: index to SIGKILL the fitting worker / raise mid-fit for that member
_KILL_ENV = "REPRO_TRAIN_POOL_KILL_MEMBER"
_RAISE_ENV = "REPRO_TRAIN_POOL_RAISE_MEMBER"


@dataclass
class TrainedMember:
    """One fitted ensemble member plus its training record."""

    model: HashedPerceptron
    history: list[int] = field(default_factory=list)
    train_s: float = 0.0


def resolve_shm(shm: str, workers: int) -> bool:
    """Whether the pooled path should use shared-memory transport."""
    if shm not in SHM_CHOICES:
        raise ModelError(f"unknown shm mode {shm!r}; expected one of {SHM_CHOICES}")
    if shm == "on":
        return True
    if shm == "off":
        return False
    return workers > 1


def _maybe_inject_failure(member: int) -> None:
    """Test hooks: die or raise while fitting a specific member."""
    kill = os.environ.get(_KILL_ENV)
    if kill is not None and int(kill) == member:
        os.kill(os.getpid(), signal.SIGKILL)
    raise_at = os.environ.get(_RAISE_ENV)
    if raise_at is not None and int(raise_at) == member:
        raise RuntimeError(f"injected mid-fit failure for member {member}")


def _fit_one(
    k: int,
    n_features: int,
    seed: int,
    model_kwargs: dict,
    fit_kwargs: dict,
    *,
    y: np.ndarray,
    X: np.ndarray | None = None,
    bins: np.ndarray | None = None,
) -> tuple[int, np.ndarray, list[int], float]:
    """Fit member ``k`` from either the raw matrix or precomputed bins."""
    t0 = time.monotonic()
    model = HashedPerceptron(n_features, seed=seed, **model_kwargs)
    history = model.fit(X, y, bins=bins, **fit_kwargs)
    return k, model.weights, history, time.monotonic() - t0


# -- legacy broadcast transport (shm="off") --------------------------------

_WORKER_STATE: tuple | None = None


def _init_worker(X: np.ndarray, y: np.ndarray, model_kwargs: dict, fit_kwargs: dict) -> None:
    """Stash the broadcast training set once per worker process."""
    global _WORKER_STATE
    _WORKER_STATE = (X, y, model_kwargs, fit_kwargs)


def _fit_member(task: tuple[int, int, int]) -> tuple[int, np.ndarray, list[int], float]:
    k, n_features, seed = task
    assert _WORKER_STATE is not None, "worker initializer did not run"
    X, y, model_kwargs, fit_kwargs = _WORKER_STATE
    _maybe_inject_failure(k)
    return _fit_one(k, n_features, seed, model_kwargs, fit_kwargs, y=y, X=X)


# -- shared-memory transport (shm="on") ------------------------------------

_SHM_STATE: tuple | None = None


def _init_shm_worker(
    wire_specs: dict, model_kwargs: dict, fit_kwargs: dict
) -> None:
    """Attach to the parent's segments once per worker process.

    The attachment is read-only and is never unlinked here — segment
    lifetime belongs to the parent (see :mod:`repro.model.shm`).  The
    mapping is released implicitly when the worker exits.
    """
    global _SHM_STATE
    attached = AttachedArrays(wire_specs)
    _SHM_STATE = (attached, model_kwargs, fit_kwargs)


def _fit_member_shm(task: tuple[int, int, int]) -> tuple[int, np.ndarray, list[int], float]:
    k, n_features, seed = task
    assert _SHM_STATE is not None, "worker initializer did not run"
    attached, model_kwargs, fit_kwargs = _SHM_STATE
    _maybe_inject_failure(k)
    return _fit_one(
        k,
        n_features,
        seed,
        model_kwargs,
        fit_kwargs,
        y=attached.arrays["y"],
        bins=attached.arrays["bins"],
    )


def train_ensemble(
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_features: int,
    seeds: list[int],
    model_kwargs: dict | None = None,
    fit_kwargs: dict | None = None,
    workers: int = 1,
    shm: str = "auto",
) -> list[TrainedMember]:
    """Fit one member per seed; results are returned in ``seeds`` order.

    ``workers <= 1`` trains serially in-process (quantizing once and
    sharing the bins matrix across members).  ``shm`` selects the pooled
    transport: ``"on"``/``"off"`` force it, ``"auto"`` uses shared memory
    whenever the pool is active.  Both transports and the serial path are
    bit-identical.  ``model_kwargs`` feeds the :class:`HashedPerceptron`
    constructor (minus ``seed``); ``fit_kwargs`` feeds
    :meth:`HashedPerceptron.fit`.
    """
    model_kwargs = dict(model_kwargs or {})
    fit_kwargs = dict(fit_kwargs or {})
    t_start = time.monotonic()
    n_workers = max(1, min(workers, len(seeds))) if seeds else 1
    use_shm = resolve_shm(shm, n_workers)
    log_event(
        logger,
        "train_pool.start",
        workers=n_workers,
        members=len(seeds),
        mode=fit_kwargs.get("mode", "online"),
        shm=use_shm,
    )
    X = np.ascontiguousarray(X)
    y = np.asarray(y)
    n_bins = int(model_kwargs.get("n_bins", 16))
    # quantization is salt-free, so one bins matrix serves every member —
    # this is both the serial fast path and the shm payload (uint8: 8x
    # smaller than the float64 features)
    bins = quantize_bins(X, n_bins)
    members: list[TrainedMember] = []

    def record(k: int, weights: np.ndarray, history: list[int], elapsed: float) -> None:
        model = HashedPerceptron(n_features, seed=seeds[k], **model_kwargs)
        model.weights = np.asarray(weights, dtype=np.int32)
        members.append(TrainedMember(model=model, history=history, train_s=elapsed))
        log_event(
            logger,
            "train_pool.member",
            member=k,
            seed=seeds[k],
            epochs=len(history),
            elapsed=f"{elapsed:.3f}",
        )

    if n_workers <= 1:
        for k, seed in enumerate(seeds):
            record(*_fit_one(k, n_features, seed, model_kwargs, fit_kwargs, y=y, bins=bins))
    elif use_shm:
        with SharedArrays({"bins": bins, "y": y.astype(np.int64, copy=False)}) as shared:
            with ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_init_shm_worker,
                initargs=(shared.wire_specs(), model_kwargs, fit_kwargs),
            ) as executor:
                futures = [
                    executor.submit(_fit_member_shm, (k, n_features, seed))
                    for k, seed in enumerate(seeds)
                ]
                results: list[tuple | None] = [None] * len(seeds)
                fallbacks: list[tuple[int, str]] = []
                for k, fut in enumerate(futures):
                    try:
                        results[k] = fut.result()
                    except Exception as exc:  # worker died or raised mid-fit
                        fallbacks.append((k, f"{type(exc).__name__}: {exc}"))
            # refit lost members in the parent (outside the executor block so
            # a broken pool is already torn down, inside the shm block so the
            # bins matrix is still the one the workers saw)
            for k, reason in fallbacks:
                log_event(
                    logger,
                    "train_pool.worker_lost",
                    level=logging.WARNING,
                    member=k,
                    seed=seeds[k],
                    reason=reason[:200],
                )
                results[k] = _fit_one(
                    k, n_features, seeds[k], model_kwargs, fit_kwargs, y=y, bins=bins
                )
            for res in results:
                assert res is not None
                record(*res)
    else:
        tasks = [(k, n_features, seed) for k, seed in enumerate(seeds)]
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(X, y, model_kwargs, fit_kwargs),
        ) as executor:
            futures = [executor.submit(_fit_member, task) for task in tasks]
            results = [None] * len(seeds)
            fallbacks = []
            for k, fut in enumerate(futures):
                try:
                    results[k] = fut.result()
                except Exception as exc:
                    fallbacks.append((k, f"{type(exc).__name__}: {exc}"))
        for k, reason in fallbacks:
            log_event(
                logger,
                "train_pool.worker_lost",
                level=logging.WARNING,
                member=k,
                seed=seeds[k],
                reason=reason[:200],
            )
            results[k] = _fit_one(
                k, n_features, seeds[k], model_kwargs, fit_kwargs, y=y, bins=bins
            )
        for res in results:
            assert res is not None
            record(*res)
    log_event(
        logger,
        "train_pool.done",
        workers=n_workers,
        members=len(members),
        shm=use_shm,
        elapsed=f"{time.monotonic() - t_start:.3f}",
    )
    return members
