"""Process-based parallel ensemble training.

:func:`train_ensemble` fits every hash-seeded ensemble member and returns
them **in model order**, with per-member training seconds and update
histories.  Worker count is semantics-free exactly like the ingest pool:
each member's training depends only on its own seed (hash salts, shuffle
order, and weights all derive from it, never from worker identity or shared
state), so ``workers=N`` produces bit-identical models to ``workers=1`` for
any ``N`` — the train-pool regression tests pin this.

Workers ship back ``(weights, history, elapsed)`` rather than whole models;
the parent reconstructs each member from its seed (which regenerates the
identical salts) and installs the trained weights.  The training matrix is
broadcast once per worker via the pool initializer instead of once per task.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..telemetry import get_logger, log_event
from .perceptron import HashedPerceptron

logger = get_logger("repro.model.train_pool")


@dataclass
class TrainedMember:
    """One fitted ensemble member plus its training record."""

    model: HashedPerceptron
    history: list[int] = field(default_factory=list)
    train_s: float = 0.0


_WORKER_STATE: tuple | None = None


def _init_worker(X: np.ndarray, y: np.ndarray, model_kwargs: dict, fit_kwargs: dict) -> None:
    """Stash the broadcast training set once per worker process."""
    global _WORKER_STATE
    _WORKER_STATE = (X, y, model_kwargs, fit_kwargs)


def _fit_member(task: tuple[int, int, int]) -> tuple[int, np.ndarray, list[int], float]:
    n_features, seed = task[1], task[2]
    assert _WORKER_STATE is not None, "worker initializer did not run"
    X, y, model_kwargs, fit_kwargs = _WORKER_STATE
    t0 = time.monotonic()
    model = HashedPerceptron(n_features, seed=seed, **model_kwargs)
    history = model.fit(X, y, **fit_kwargs)
    return task[0], model.weights, history, time.monotonic() - t0


def train_ensemble(
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_features: int,
    seeds: list[int],
    model_kwargs: dict | None = None,
    fit_kwargs: dict | None = None,
    workers: int = 1,
) -> list[TrainedMember]:
    """Fit one member per seed; results are returned in ``seeds`` order.

    ``workers <= 1`` trains serially in-process.  ``model_kwargs`` feeds the
    :class:`HashedPerceptron` constructor (minus ``seed``); ``fit_kwargs``
    feeds :meth:`HashedPerceptron.fit`.
    """
    model_kwargs = dict(model_kwargs or {})
    fit_kwargs = dict(fit_kwargs or {})
    t_start = time.monotonic()
    n_workers = max(1, min(workers, len(seeds))) if seeds else 1
    log_event(
        logger,
        "train_pool.start",
        workers=n_workers,
        members=len(seeds),
        mode=fit_kwargs.get("mode", "online"),
    )
    members: list[TrainedMember] = []
    if n_workers <= 1:
        for k, seed in enumerate(seeds):
            t0 = time.monotonic()
            model = HashedPerceptron(n_features, seed=seed, **model_kwargs)
            history = model.fit(X, y, **fit_kwargs)
            elapsed = time.monotonic() - t0
            members.append(TrainedMember(model=model, history=history, train_s=elapsed))
            log_event(
                logger,
                "train_pool.member",
                member=k,
                seed=seed,
                epochs=len(history),
                elapsed=f"{elapsed:.3f}",
            )
    else:
        tasks = [(k, n_features, seed) for k, seed in enumerate(seeds)]
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(np.ascontiguousarray(X), np.asarray(y), model_kwargs, fit_kwargs),
        ) as executor:
            # executor.map preserves submission order, so members come back
            # in model order no matter which worker finishes first
            for k, weights, history, elapsed in executor.map(_fit_member, tasks):
                model = HashedPerceptron(n_features, seed=seeds[k], **model_kwargs)
                model.weights = np.asarray(weights, dtype=np.int32)
                members.append(TrainedMember(model=model, history=history, train_s=elapsed))
                log_event(
                    logger,
                    "train_pool.member",
                    member=k,
                    seed=seeds[k],
                    epochs=len(history),
                    elapsed=f"{elapsed:.3f}",
                )
    log_event(
        logger,
        "train_pool.done",
        workers=n_workers,
        members=len(members),
        elapsed=f"{time.monotonic() - t_start:.3f}",
    )
    return members
