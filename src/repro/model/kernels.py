"""Training kernels for the hashed perceptron.

Every kernel runs ONE epoch of the threshold rule over a precomputed
:class:`TrainPlan` and shares the same contract::

    updates = kernel(w, plan, y, order, theta, clamp)

where ``w`` is the flattened (raveled view) weight array, ``plan`` holds the
per-sample hash indices (computed **once per fit()**, not per epoch), ``y``
the ±1 labels, and ``order`` the visit order for this epoch.  ``w`` is
mutated in place; the return value is the number of weight updates made.

Why a plan?  Profiling the seed implementation showed the per-sample loop
spends almost nothing on margins (a ~3 µs gather) and nearly everything on
the update: ``np.add.at`` over a sample's 1.1k (possibly duplicated) indices
costs ~87 µs and the old full-array ``np.clip`` another ~14 µs.  The plan
precomputes, per sample, the *deduplicated* index list with multiplicities
(CSR layout), so an update becomes ``take / += target*count / clip / scatter``
— four primitive calls, ~12 µs, and bit-identical because adding ``target``
once per occurrence equals adding ``target * multiplicity`` once, and
clamping only the touched entries equals the full clip (every untouched
weight is already in range).

Three kernels:

- :func:`fit_epoch_reference` — the naive per-sample loop with ``np.add.at``,
  kept as the executable specification.  The equivalence tests pin the fast
  kernels against it bit-for-bit.
- :func:`fit_epoch_blocked` — bit-identical to the reference.  Margins are
  computed for a whole block of samples in one vectorized gather+sum; a run
  of samples needing no update is *conflict-free* (no weight changed while
  walking it), so the precomputed margins stay valid and the entire run is
  decided without per-sample Python work.  At the first below-threshold
  sample the CSR update is applied and the walk restarts just after it.
  Block size adapts: it grows geometrically through update-free stretches
  (converged epochs stream in a handful of numpy calls) and shrinks while
  updates are dense (early epochs pay only for short gathers).
- :func:`fit_epoch_minibatch` — applies the threshold rule once per
  mini-batch: margins for the whole batch are computed against the weights
  at batch start, every below-threshold sample's update lands in one
  signed-``bincount`` scatter, and the net-changed weights are clamped once.
  This is a *different training order* from the online rule (decisions
  within a batch do not see each other's updates, and clamping is
  per-batch), so it is opt-in and gated by the golden-corpus accuracy check
  rather than the bit-identical guarantee.  Batch size is an accuracy knob:
  the default stays small because hashed slots are shared across most
  sample pairs and stale wide-batch decisions over-update toward the
  majority class.

A fourth, :func:`fit_epoch_native`, is the reference loop compiled to C
(:mod:`repro.model._native`): same sequential order, same integer
arithmetic, bit-identical weights — available only where a C compiler (or a
cached build) exists, which :func:`resolve_kernel` probes when asked for
``"auto"``.  The native path reads ``plan.flat`` directly and never touches
the CSR, so the plan builds its dedup lazily.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from . import _native

#: adaptive block bounds for :func:`fit_epoch_blocked`; tuned on the seed
#: corpus — small floor because dense early epochs advance only a couple of
#: samples per restart, so oversized blocks just re-gather thrown-away rows
MIN_BLOCK = 4
MAX_BLOCK = 512

#: default samples per batch in :func:`fit_epoch_minibatch` — deliberately
#: small: decisions within a batch are stale, and the hashed slots are shared
#: across most sample pairs, so wide batches overshoot the theta band in the
#: majority-class direction and cost accuracy
DEFAULT_MINIBATCH = 8


@dataclass
class TrainPlan:
    """Per-``fit()`` precompute: hash indices plus their CSR dedup.

    ``flat``   — ``(n_samples, n_features)`` flat weight indices.
    ``uidx``   — concatenated per-sample *unique* indices.
    ``ucount`` — multiplicity of each unique index (hash collisions inside a
    sample map several features to one slot).
    ``uoffs``  — ``(n_samples + 1,)`` row offsets into ``uidx``/``ucount``.

    The CSR triple is built lazily on first access: the numpy kernels need
    it for their scatter updates, but the native kernel walks ``flat``
    directly, and skipping the row-wise ``np.sort`` is a measurable slice of
    a small-corpus fit.
    """

    flat: np.ndarray
    #: lazily-built (uidx, ucount, uoffs) dedup, see :meth:`_ensure_csr`
    _csr: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
    #: lazily-allocated (n_samples, n_features) buffer reused by every
    #: epoch's row permutation, so 20 epochs cost one allocation
    _row_scratch: np.ndarray | None = None

    @classmethod
    def from_flat(cls, flat: np.ndarray) -> "TrainPlan":
        return cls(flat=flat)

    def _ensure_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build the dedup CSR fully vectorized (row-wise sort + first-
        occurrence mask); costs one ``np.sort`` over the index matrix."""
        if self._csr is not None:
            return self._csr
        flat = self.flat
        n, f = flat.shape
        sf = np.sort(flat, axis=1)
        first = np.ones((n, f), dtype=bool)
        if f > 1:
            first[:, 1:] = sf[:, 1:] != sf[:, :-1]
        row_uniques = first.sum(axis=1)
        uoffs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(row_uniques, out=uoffs[1:])
        uidx = sf[first]
        first_pos = np.flatnonzero(first.ravel())
        nxt = np.empty_like(first_pos)
        # each row starts with a first-occurrence, so the successor of a
        # row's last unique is exactly the next row's start — no per-row fixup
        nxt[:-1] = first_pos[1:]
        if len(nxt):
            nxt[-1] = sf.size
        ucount = (nxt - first_pos).astype(np.int32)
        self._csr = (uidx, ucount, uoffs)
        return self._csr

    @property
    def uidx(self) -> np.ndarray:
        return self._ensure_csr()[0]

    @property
    def ucount(self) -> np.ndarray:
        return self._ensure_csr()[1]

    @property
    def uoffs(self) -> np.ndarray:
        return self._ensure_csr()[2]

    def sample(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """The unique indices and multiplicities of sample ``i``."""
        uidx, ucount, uoffs = self._ensure_csr()
        s, e = uoffs[i], uoffs[i + 1]
        return uidx[s:e], ucount[s:e]

    def permuted_rows(self, order: np.ndarray) -> np.ndarray:
        """``flat`` rows in ``order``, written into the reused scratch."""
        if self._row_scratch is None:
            self._row_scratch = np.empty_like(self.flat)
        np.take(self.flat, order, axis=0, out=self._row_scratch)
        return self._row_scratch


def fit_epoch_reference(
    w: np.ndarray,
    plan: TrainPlan,
    y: np.ndarray,
    order: np.ndarray,
    theta: float,
    clamp: int,
) -> int:
    """Naive online pass: one margin, one decision, one update per sample."""
    flat = plan.flat
    updates = 0
    for i in order:
        idx = flat[i]
        margin = int(w[idx].sum())
        target = int(y[i])
        if target * margin <= theta:
            np.add.at(w, idx, target)
            w[idx] = np.clip(w[idx], -clamp, clamp)
            updates += 1
    return updates


def fit_epoch_blocked(
    w: np.ndarray,
    plan: TrainPlan,
    y: np.ndarray,
    order: np.ndarray,
    theta: float,
    clamp: int,
    *,
    min_block: int = MIN_BLOCK,
    max_block: int = MAX_BLOCK,
) -> int:
    """Bit-identical online pass that skips conflict-free runs in blocks.

    Margins computed at block start remain valid for every sample visited
    before the first weight update, so the prefix of the block up to (and
    excluding) the first below-threshold sample is decided in one vectorized
    step — exactly as the sequential reference would have decided it.
    """
    updates = 0
    n = len(order)
    pos = 0
    block = max(1, int(min_block))
    max_block = max(block, int(max_block))
    # permute rows once per epoch so every block is a contiguous *view* —
    # per-block row gathers would re-read the index matrix on every restart
    fo = plan.permuted_rows(order)
    yo = y.take(order)
    uidx, ucount, uoffs = plan.uidx, plan.ucount, plan.uoffs
    while pos < n:
        fb = fo[pos : pos + block]
        # int32 accumulator is exact (|margin| <= n_features * clamp << 2**31)
        # and halves the reduction bandwidth
        margins = w.take(fb).sum(axis=1, dtype=np.int32)
        needs = yo[pos : pos + block] * margins <= theta
        p = int(needs.argmax())
        if not needs[p]:
            # conflict-free run: no update, every precomputed margin was valid
            pos += len(fb)
            block = min(block * 2, max_block)
            continue
        i = order[pos + p]
        target = int(yo[pos + p])
        s, e = uoffs[i], uoffs[i + 1]
        ui = uidx[s:e]
        wu = w.take(ui)
        wu += target * ucount[s:e]
        # min/max instead of np.clip: the clip wrapper's bound checks cost
        # more than the clamp itself at this call rate
        np.minimum(wu, clamp, out=wu)
        np.maximum(wu, -clamp, out=wu)
        w[ui] = wu
        updates += 1
        pos += p + 1
        block = max(block // 2, min_block, 1)
    return updates


def fit_epoch_minibatch(
    w: np.ndarray,
    plan: TrainPlan,
    y: np.ndarray,
    order: np.ndarray,
    theta: float,
    clamp: int,
    *,
    batch_size: int = DEFAULT_MINIBATCH,
) -> int:
    """Batched threshold rule: decide a whole mini-batch against the weights
    at batch start, apply every update in one signed bincount scatter, clamp
    the net-changed weights once."""
    updates = 0
    n = len(order)
    batch_size = max(1, int(batch_size))
    fo = plan.permuted_rows(order)
    yo = y.take(order)
    for start in range(0, n, batch_size):
        fb = fo[start : start + batch_size]
        yb = yo[start : start + batch_size]
        margins = w.take(fb).sum(axis=1, dtype=np.int32)
        needs = yb * margins <= theta
        k = int(needs.sum())
        if not k:
            continue
        sel = fb[needs]
        t = yb[needs]
        # ±1 targets split into two integer bincounts: exact, no float
        # weights, and duplicates inside a sample accumulate naturally
        delta = np.bincount(sel[t > 0].ravel(), minlength=w.size)
        delta -= np.bincount(sel[t < 0].ravel(), minlength=w.size)
        w += delta
        touched = np.flatnonzero(delta)
        wt = w.take(touched)
        np.minimum(wt, clamp, out=wt)
        np.maximum(wt, -clamp, out=wt)
        w[touched] = wt
        updates += k
    return updates


def fit_epoch_native(
    w: np.ndarray,
    plan: TrainPlan,
    y: np.ndarray,
    order: np.ndarray,
    theta: float,
    clamp: int,
) -> int:
    """The reference loop compiled to C — bit-identical, no CSR needed.

    Raises :class:`ModelError` when no compiler or cached build is
    available; callers wanting graceful degradation go through
    :func:`resolve_kernel`.
    """
    if not _native.available():
        raise ModelError(
            "native kernel unavailable (no C compiler and no cached build); "
            "use kernel='auto' to fall back automatically"
        )
    return _native.fit_epoch(w, plan.flat, y, order, theta, clamp)


#: online kernels, selectable by name; minibatch is a *mode*, not a kernel,
#: because it changes training order rather than just the execution plan
ONLINE_KERNELS = {
    "blocked": fit_epoch_blocked,
    "native": fit_epoch_native,
    "reference": fit_epoch_reference,
}

#: kernel names accepted by ``fit``/``fit_epoch``/``partial_fit``: the
#: concrete kernels plus ``auto`` (best available, always bit-identical)
KERNEL_CHOICES = ("auto", *sorted(ONLINE_KERNELS))


def resolve_kernel(name: str) -> str:
    """Map a requested kernel name to a concrete ``ONLINE_KERNELS`` entry.

    ``auto`` picks the native kernel when a compiled build is usable and the
    blocked numpy kernel otherwise — the two are bit-identical, so the
    choice is invisible to everything but wall-clock.
    """
    if name == "auto":
        return "native" if _native.available() else "blocked"
    if name not in ONLINE_KERNELS:
        raise ModelError(
            f"unknown kernel {name!r}; expected one of {list(KERNEL_CHOICES)}"
        )
    return name
