"""Model layer: the hashed-weight perceptron detector."""

from .perceptron import HashedPerceptron

__all__ = ["HashedPerceptron"]
