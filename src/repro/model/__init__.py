"""Model layer: the hashed-weight perceptron detector, its training kernels,
the parallel ensemble trainer, and the versioned artifact store."""

from .artifact import ArtifactStore, LoadedArtifact, PublishResult
from .kernels import (
    ONLINE_KERNELS,
    fit_epoch_blocked,
    fit_epoch_minibatch,
    fit_epoch_reference,
)
from .perceptron import (
    FIT_MODES,
    HashedPerceptron,
    ensemble_margins,
    ensemble_partial_fit,
    margin_scales,
    trace_verdicts,
)
from .train_pool import TrainedMember, train_ensemble

__all__ = [
    "ArtifactStore",
    "FIT_MODES",
    "HashedPerceptron",
    "LoadedArtifact",
    "ONLINE_KERNELS",
    "PublishResult",
    "TrainedMember",
    "ensemble_margins",
    "ensemble_partial_fit",
    "fit_epoch_blocked",
    "fit_epoch_minibatch",
    "fit_epoch_reference",
    "margin_scales",
    "train_ensemble",
    "trace_verdicts",
]
