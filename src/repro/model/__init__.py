"""Model layer: the hashed-weight perceptron detector."""

from .perceptron import HashedPerceptron, ensemble_margins, trace_verdicts

__all__ = ["HashedPerceptron", "ensemble_margins", "trace_verdicts"]
