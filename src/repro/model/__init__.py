"""Model layer: the hashed-weight perceptron detector, its training kernels,
and the parallel ensemble trainer."""

from .kernels import (
    ONLINE_KERNELS,
    fit_epoch_blocked,
    fit_epoch_minibatch,
    fit_epoch_reference,
)
from .perceptron import FIT_MODES, HashedPerceptron, ensemble_margins, trace_verdicts
from .train_pool import TrainedMember, train_ensemble

__all__ = [
    "FIT_MODES",
    "HashedPerceptron",
    "ONLINE_KERNELS",
    "TrainedMember",
    "ensemble_margins",
    "fit_epoch_blocked",
    "fit_epoch_minibatch",
    "fit_epoch_reference",
    "train_ensemble",
    "trace_verdicts",
]
