"""Shared-memory segment lifecycle for the zero-copy train pool.

The pool's whole point is that workers *attach* to the featurized matrix
instead of unpickling a private copy, so this module owns the one part
that is easy to get wrong: who creates, who attaches, and who unlinks.

The contract is strictly parent-owned:

* ``share(arrays)`` (a context manager) creates one POSIX segment per
  array in the parent, copies the data in once, and **guarantees**
  close+unlink on exit — success, worker crash, or ``KeyboardInterrupt``
  all funnel through the same ``finally``.
* Workers attach via :class:`AttachedArrays` and get read-only numpy
  views; they never unlink.  Pool workers share the parent's
  ``resource_tracker`` process (both fork and spawn inherit its pipe), and
  its per-type cache is a *set* — a worker attach re-registers the same
  name as a no-op, and the parent's ``unlink()`` unregisters it exactly
  once.  Crucially the worker must **not** unregister on attach: that
  would strip the parent's sole registration from the shared set and turn
  the parent's unlink into a tracker-side KeyError.  If the parent is
  SIGKILL'd, the surviving tracker unlinks the still-registered segments
  itself — the designed last-resort net.

Segment names carry a ``repro-train-`` prefix plus a random token, which
keeps them identifiable in ``/dev/shm`` and lets the leak tests assert
there is no residue after every exit path.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..telemetry import get_logger, log_event

logger = get_logger("repro.model.shm")

#: every segment this module creates starts with this, so tests (and
#: humans) can spot our residue in /dev/shm unambiguously
SEGMENT_PREFIX = "repro-train-"


@dataclass(frozen=True)
class SegmentSpec:
    """Everything a worker needs to rebuild one array: name + layout.

    This is the *only* payload the pool ships per array — a few dozen
    bytes instead of the megabytes behind them.
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]

    def to_wire(self) -> tuple[str, str, tuple[int, ...]]:
        return (self.segment, self.dtype, self.shape)

    @classmethod
    def from_wire(cls, wire: tuple[str, str, tuple[int, ...]]) -> SegmentSpec:
        segment, dtype, shape = wire
        return cls(segment=segment, dtype=dtype, shape=tuple(shape))


class SharedArrays:
    """Parent-side owner of a set of named shared-memory arrays.

    Use as a context manager; ``__exit__`` closes *and unlinks* every
    segment unconditionally.  ``specs`` is the picklable description to
    ship to workers.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        self.specs: dict[str, SegmentSpec] = {}
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        token = secrets.token_hex(4)
        try:
            for key, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                seg = shared_memory.SharedMemory(
                    create=True,
                    # max(1): zero-length arrays still need a valid segment
                    size=max(1, arr.nbytes),
                    name=f"{SEGMENT_PREFIX}{token}-{key}",
                )
                self._segments.append(seg)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
                view[...] = arr
                self.specs[key] = SegmentSpec(
                    segment=seg.name, dtype=arr.dtype.str, shape=arr.shape
                )
        except BaseException:
            self.close()
            raise
        log_event(
            logger,
            "shm.share",
            segments=len(self._segments),
            bytes=sum(s.size for s in self._segments),
        )

    def wire_specs(self) -> dict[str, tuple[str, str, tuple[int, ...]]]:
        """Plain-tuple form of ``specs`` for cheap pickling to workers."""
        return {k: v.to_wire() for k, v in self.specs.items()}

    def close(self) -> None:
        """Close and unlink every segment; safe to call more than once."""
        if self._closed:
            return
        self._closed = True
        for seg in self._segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover - buffer already released
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        if self._segments:
            log_event(logger, "shm.unlink", segments=len(self._segments))
        self._segments = []

    def __enter__(self) -> SharedArrays:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AttachedArrays:
    """Worker-side attachment: read-only views over parent-owned segments.

    Never unlinks.  ``close()`` only releases this process's mapping; the
    parent's ``SharedArrays.close()`` is what removes the segment.
    """

    def __init__(self, specs: dict[str, tuple[str, str, tuple[int, ...]]]):
        self.arrays: dict[str, np.ndarray] = {}
        self._segments: list[shared_memory.SharedMemory] = []
        try:
            for key, wire in specs.items():
                spec = SegmentSpec.from_wire(wire)
                seg = shared_memory.SharedMemory(name=spec.segment)
                self._segments.append(seg)
                view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)
                view.flags.writeable = False
                self.arrays[key] = view
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        # drop the numpy views first: SharedMemory.close() refuses while
        # exported buffers are alive
        self.arrays = {}
        for seg in self._segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover - double close
                pass
        self._segments = []

    def __enter__(self) -> AttachedArrays:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
