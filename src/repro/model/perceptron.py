"""Hashed-weight perceptron, after PerSpectron (MICRO 2020).

Each (feature, quantized-value) pair is hashed into one of ``n_tables``
weight tables; the decision is the sum of the selected weights.  Training is
the classic threshold rule from perceptron branch predictors: update on a
misprediction *or* whenever the margin is below ``theta``, and clamp every
weight to a small signed range so single features cannot saturate the sum.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import ModelError
from .kernels import ONLINE_KERNELS, TrainPlan, fit_epoch_minibatch

MODEL_VERSION = 1

#: training modes accepted by :meth:`HashedPerceptron.fit`
FIT_MODES = ("online", "minibatch")

#: rows scored per chunk in the batched decision path; bounds the transient
#: (batch, n_features) int64 index matrix to ~75 MB at 1159 features
DEFAULT_BATCH_SIZE = 8192

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX = np.uint64(0xBF58476D1CE4E5B9)


class HashedPerceptron:
    def __init__(
        self,
        n_features: int,
        *,
        n_tables: int = 16,
        table_bits: int = 12,
        n_bins: int = 16,
        theta: float | None = None,
        weight_clamp: int = 127,
        seed: int = 0,
    ):
        if n_features < 1:
            raise ModelError("n_features must be >= 1")
        self.n_features = int(n_features)
        self.n_tables = int(n_tables)
        self.table_bits = int(table_bits)
        self.table_size = 1 << self.table_bits
        self.n_bins = int(n_bins)
        # threshold heuristic: scale with sqrt of the summand count, not the
        # count itself -- with ~1k features summed per decision, a linear
        # theta keeps every sample below threshold forever and training
        # degenerates into label counting
        self.theta = float(theta) if theta is not None else 1.93 * n_features**0.5 + 14
        self.weight_clamp = int(weight_clamp)
        self.seed = int(seed)
        self.weights = np.zeros((self.n_tables, self.table_size), dtype=np.int32)

        rng = np.random.default_rng(self.seed)
        self._salts = rng.integers(0, 2**63, size=self.n_features, dtype=np.uint64)
        self._tables = np.arange(self.n_features, dtype=np.int64) % self.n_tables

    # -- hashing ---------------------------------------------------------

    def _quantize(self, X: np.ndarray) -> np.ndarray:
        """Map z-scored values into ``n_bins`` integer buckets over [-4, 4]."""
        scaled = np.clip(X, -4.0, 4.0)
        scaled += 4.0
        scaled *= self.n_bins / 8.0
        bins = scaled.astype(np.int64)
        np.minimum(bins, self.n_bins - 1, out=bins)
        return bins

    def _indices(self, X: np.ndarray) -> np.ndarray:
        """Per-sample weight index for every feature: (n_samples, n_features).

        The hash arithmetic runs in place on one uint64 buffer — index
        construction is memory-bound at corpus scale, so every avoided
        temporary is a full pass over an (n_samples, n_features) matrix.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ModelError(
                f"input shape {X.shape} does not match n_features={self.n_features}"
            )
        # int64 -> uint64 view is the same bits as astype for every value
        # (two's-complement wrap), without another full-matrix copy
        h = self._quantize(X).view(np.uint64)
        with np.errstate(over="ignore"):
            h *= _GOLDEN
            h += self._salts[None, :]
            h *= _MIX
        h >>= np.uint64(17)
        out = h.view(np.int64)  # free reinterpret: values are < 2**47 here
        out &= self.table_size - 1
        return out

    def _flat_indices(self, X: np.ndarray) -> np.ndarray:
        """Flat weight index per (sample, feature), as int32 — the weight
        space is n_tables * table_size entries, far below 2**31, and the
        narrower dtype halves the bandwidth of every training-epoch gather."""
        idx = self._indices(X)
        idx += self._tables[None, :] * self.table_size
        return idx.astype(np.int32)

    # -- inference -------------------------------------------------------

    def decision(self, X: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """Signed margin per sample.

        Scoring materializes a ``(n_samples, n_features)`` int64 index matrix,
        so large matrices are processed in ``batch_size`` chunks (default
        :data:`DEFAULT_BATCH_SIZE`).  Per-row sums are independent, so
        chunking is bit-identical to one shot.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ModelError(
                f"input shape {X.shape} does not match n_features={self.n_features}"
            )
        batch = batch_size if batch_size and batch_size > 0 else DEFAULT_BATCH_SIZE
        n = X.shape[0]
        if n <= batch:
            flat = self._flat_indices(X)
            return self.weights.ravel()[flat].sum(axis=1).astype(np.float64)
        out = np.empty(n, dtype=np.float64)
        w = self.weights.ravel()
        for start in range(0, n, batch):
            flat = self._flat_indices(X[start : start + batch])
            out[start : start + batch] = w[flat].sum(axis=1)
        return out

    def predict(self, X: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """+1 attack / -1 benign per sample (0 margin counts as benign)."""
        return np.where(self.decision(X, batch_size=batch_size) > 0, 1, -1).astype(np.int64)

    # -- training --------------------------------------------------------

    def _check_labels(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        if set(np.unique(y)) - {-1, 1}:
            raise ModelError("labels must be -1 or +1")
        return y.astype(np.int64, copy=False)

    def fit_epoch(
        self, X: np.ndarray, y: np.ndarray, *, shuffle_rng=None, kernel: str = "blocked"
    ) -> int:
        """One online pass; returns the number of weight updates made.

        ``kernel`` selects the execution plan (``blocked`` or ``reference``);
        both produce bit-identical weights, which the equivalence tests pin.
        Standalone calls recompute the hash indices — :meth:`fit` computes
        them once and reuses them across every epoch.
        """
        y = self._check_labels(y)
        plan = TrainPlan.from_flat(self._flat_indices(X))
        order = np.arange(len(y))
        if shuffle_rng is not None:
            shuffle_rng.shuffle(order)
        return self._run_online_epoch(plan, y, order, kernel)

    def _run_online_epoch(
        self, plan: TrainPlan, y: np.ndarray, order: np.ndarray, kernel: str
    ) -> int:
        try:
            fn = ONLINE_KERNELS[kernel]
        except KeyError:
            raise ModelError(
                f"unknown kernel {kernel!r}; expected one of {sorted(ONLINE_KERNELS)}"
            ) from None
        return fn(self.weights.ravel(), plan, y, order, self.theta, self.weight_clamp)

    def partial_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        seed: int | None = None,
        kernel: str = "blocked",
        shuffle: bool = True,
    ) -> int:
        """One incremental online pass over a labeled batch; returns the
        number of weight updates made.

        This is the streaming-learning entry point: weights are updated in
        place starting from their current values, so repeated calls fold
        labeled feedback batches into a served model without retraining from
        scratch.  With the default ``seed`` (the model's own) one
        ``partial_fit`` pass over a corpus is **bit-identical** to the first
        epoch of :meth:`fit` on that corpus — the property tests pin this,
        which is what lets the drift supervisor reuse the batch kernels
        verbatim.
        """
        y = self._check_labels(y)
        plan = TrainPlan.from_flat(self._flat_indices(X))
        order = np.arange(len(y))
        if shuffle:
            rng = np.random.default_rng(self.seed if seed is None else seed)
            rng.shuffle(order)
        return self._run_online_epoch(plan, y, order, kernel)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 20,
        seed: int | None = None,
        mode: str = "online",
        kernel: str = "blocked",
        minibatch_size: int | None = None,
    ) -> list[int]:
        """Train until an epoch makes no misprediction-driven updates or the
        epoch budget runs out; returns per-epoch update counts.

        Label validation and hash-index computation run **once** here and are
        reused by every epoch.  ``mode="online"`` (default) is the sequential
        threshold rule, bit-identical for either ``kernel``;
        ``mode="minibatch"`` applies the rule per mini-batch — a different
        but accuracy-equivalent training order.
        """
        if mode not in FIT_MODES:
            raise ModelError(f"unknown fit mode {mode!r}; expected one of {FIT_MODES}")
        if mode == "online" and kernel not in ONLINE_KERNELS:
            raise ModelError(
                f"unknown kernel {kernel!r}; expected one of {sorted(ONLINE_KERNELS)}"
            )
        y = self._check_labels(y)
        plan = TrainPlan.from_flat(self._flat_indices(X))
        w = self.weights.ravel()
        rng = np.random.default_rng(self.seed if seed is None else seed)
        n = len(y)
        history = []
        for _ in range(epochs):
            order = np.arange(n)
            rng.shuffle(order)
            if mode == "minibatch":
                kwargs = {} if minibatch_size is None else {"batch_size": minibatch_size}
                updates = fit_epoch_minibatch(
                    w, plan, y, order, self.theta, self.weight_clamp, **kwargs
                )
            else:
                updates = self._run_online_epoch(plan, y, order, kernel)
            history.append(updates)
            if updates == 0:
                break
        return history

    # -- persistence -----------------------------------------------------

    def save(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            version=MODEL_VERSION,
            weights=self.weights,
            salts=self._salts,
            config=np.array(
                [
                    self.n_features,
                    self.n_tables,
                    self.table_bits,
                    self.n_bins,
                    self.weight_clamp,
                    self.seed,
                ],
                dtype=np.int64,
            ),
            theta=np.float64(self.theta),
        )

    #: npz keys a saved model must carry; anything less is a truncated or
    #: foreign file, not a model
    _REQUIRED_KEYS = ("version", "weights", "salts", "config", "theta")

    @classmethod
    def load(cls, path) -> "HashedPerceptron":
        """Load a saved model, validating every field before trusting it.

        Corrupt, truncated, or foreign files raise :class:`ModelError` with a
        specific reason — never a raw ``zipfile``/``pickle``/``KeyError`` —
        so the artifact loader and serving layer can refuse them cleanly.
        """
        try:
            with np.load(path) as doc:
                missing = [k for k in cls._REQUIRED_KEYS if k not in doc.files]
                if missing:
                    raise ModelError(f"{path}: model file missing keys {missing}")
                if int(doc["version"]) != MODEL_VERSION:
                    raise ModelError(
                        f"{path}: unsupported model version {int(doc['version'])}, "
                        f"expected {MODEL_VERSION}"
                    )
                config = np.asarray(doc["config"])
                if config.shape != (6,):
                    raise ModelError(
                        f"{path}: config must hold 6 values, got shape {config.shape}"
                    )
                n_features, n_tables, table_bits, n_bins, clamp, seed = (
                    int(v) for v in config
                )
                if not (1 <= table_bits <= 30):
                    raise ModelError(f"{path}: implausible table_bits {table_bits}")
                if not (1 <= n_tables <= 1 << 16):
                    raise ModelError(f"{path}: implausible n_tables {n_tables}")
                theta = float(doc["theta"])
                if not np.isfinite(theta) or theta < 0:
                    raise ModelError(f"{path}: theta {theta} is not a finite non-negative value")
                model = cls(
                    n_features,
                    n_tables=n_tables,
                    table_bits=table_bits,
                    n_bins=n_bins,
                    theta=theta,
                    weight_clamp=clamp,
                    seed=seed,
                )
                weights = np.asarray(doc["weights"])
                if weights.shape != model.weights.shape:
                    raise ModelError(
                        f"{path}: weights shape {weights.shape} does not match "
                        f"config shape {model.weights.shape}"
                    )
                if not np.issubdtype(weights.dtype, np.integer):
                    raise ModelError(f"{path}: weights dtype {weights.dtype} is not integral")
                salts = np.asarray(doc["salts"])
                if salts.shape != (model.n_features,):
                    raise ModelError(
                        f"{path}: salts shape {salts.shape} does not match "
                        f"n_features={model.n_features}"
                    )
                if salts.dtype != np.uint64:
                    raise ModelError(f"{path}: salts dtype {salts.dtype} is not uint64")
                model.weights = weights.astype(np.int32)
                model._salts = salts
        except ModelError:
            raise
        except Exception as exc:
            raise ModelError(f"cannot load model from {path}: {exc}") from exc
        return model


# ---------------------------------------------------------------------------
# batched scoring over ensembles and trace groups
# ---------------------------------------------------------------------------


def ensemble_margins(
    models,
    X: np.ndarray,
    *,
    batch_size: int | None = None,
    scales=None,
) -> np.ndarray:
    """Per-sample margin averaged over ensemble members, each normalized by
    its own mean magnitude so no member dominates.

    By default the normalizing magnitude is the mean ``|margin|`` of the
    batch being scored, which makes the result depend on *what else* is in
    the batch.  Pass ``scales`` (one positive float per member, e.g. the
    mean training-set magnitude recorded in a model artifact) to pin the
    normalization: per-sample margins are then independent of batching, so
    a serving path that coalesces arbitrary requests into micro-batches is
    bit-identical to scoring the whole corpus at once.
    """
    if not models:
        raise ModelError("ensemble is empty")
    if scales is not None and len(scales) != len(models):
        raise ModelError(
            f"got {len(scales)} margin scales for {len(models)} ensemble members"
        )
    total = np.zeros(np.asarray(X).shape[0], dtype=np.float64)
    for k, model in enumerate(models):
        d = model.decision(X, batch_size=batch_size)
        scale = float(scales[k]) if scales is not None else np.abs(d).mean()
        total += d / (scale + 1e-9)
    return total / len(models)


def ensemble_partial_fit(
    models,
    X: np.ndarray,
    y: np.ndarray,
    *,
    seed: int | None = None,
    kernel: str = "blocked",
) -> list[int]:
    """One :meth:`HashedPerceptron.partial_fit` pass per ensemble member;
    returns per-member update counts.

    With ``seed=None`` every member shuffles with its own model seed, so the
    result is bit-identical to the first epoch each member's :meth:`fit`
    would have run.  Passing ``seed`` decorrelates the visit orders across
    repeated feedback batches (member ``k`` uses ``seed + 17 * k``).
    """
    if not models:
        raise ModelError("ensemble is empty")
    return [
        model.partial_fit(
            X, y, seed=None if seed is None else seed + 17 * k, kernel=kernel
        )
        for k, model in enumerate(models)
    ]


def margin_scales(models, X: np.ndarray, *, batch_size: int | None = None) -> list[float]:
    """Per-member mean ``|margin|`` over a reference matrix (typically the
    training set) — the fixed normalization constants stored in a model
    artifact so serving-time margins do not depend on batch composition."""
    if not models:
        raise ModelError("ensemble is empty")
    return [
        float(np.abs(model.decision(X, batch_size=batch_size)).mean()) for model in models
    ]


def trace_verdicts(margins: np.ndarray, groups: np.ndarray, n_traces: int) -> np.ndarray:
    """Mean per-interval margin per trace -> +1/-1 verdict (0 for traces with
    no samples).  One ``bincount`` pass instead of a per-trace mask loop."""
    margins = np.asarray(margins, dtype=np.float64)
    groups = np.asarray(groups, dtype=np.int64)
    if margins.shape != groups.shape:
        raise ModelError(
            f"margins shape {margins.shape} does not match groups shape {groups.shape}"
        )
    if groups.size and (groups.min() < 0 or groups.max() >= n_traces):
        raise ModelError("groups index outside [0, n_traces)")
    sums = np.bincount(groups, weights=margins, minlength=n_traces)
    counts = np.bincount(groups, minlength=n_traces)
    verdicts = np.zeros(n_traces, dtype=np.int64)
    seen = counts > 0
    with np.errstate(invalid="ignore"):
        verdicts[seen] = np.where(sums[seen] / counts[seen] > 0, 1, -1)
    return verdicts
