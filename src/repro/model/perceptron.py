"""Hashed-weight perceptron, after PerSpectron (MICRO 2020).

Each (feature, quantized-value) pair is hashed into one of ``n_tables``
weight tables; the decision is the sum of the selected weights.  Training is
the classic threshold rule from perceptron branch predictors: update on a
misprediction *or* whenever the margin is below ``theta``, and clamp every
weight to a small signed range so single features cannot saturate the sum.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import ModelError
from . import _native
from .kernels import (
    ONLINE_KERNELS,
    TrainPlan,
    fit_epoch_minibatch,
    resolve_kernel,
)

MODEL_VERSION = 1

#: training modes accepted by :meth:`HashedPerceptron.fit`
FIT_MODES = ("online", "minibatch")

#: rows scored per chunk in the batched decision path; bounds the transient
#: (batch, n_features) int64 index matrix to ~75 MB at 1159 features
DEFAULT_BATCH_SIZE = 8192

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX = np.uint64(0xBF58476D1CE4E5B9)


def quantize_bins(X: np.ndarray, n_bins: int) -> np.ndarray:
    """Map z-scored values into ``n_bins`` integer buckets over [-4, 4],
    packed as uint8.

    This is the only part of index hashing that reads the feature *values*,
    and it is salt-free — every ensemble member with the same ``n_bins``
    shares it.  The trainer and scorer compute it once per matrix and hand
    the bins to each member; the shared-memory train pool ships this uint8
    matrix (8x smaller than the float64 features) instead of ``X`` itself.
    """
    X = np.asarray(X, dtype=np.float64)
    scaled = np.clip(X, -4.0, 4.0)
    scaled += 4.0
    scaled *= n_bins / 8.0
    bins = scaled.astype(np.int64)
    np.minimum(bins, n_bins - 1, out=bins)
    return bins.astype(np.uint8)


class HashedPerceptron:
    def __init__(
        self,
        n_features: int,
        *,
        n_tables: int = 16,
        table_bits: int = 12,
        n_bins: int = 16,
        theta: float | None = None,
        weight_clamp: int = 127,
        seed: int = 0,
    ):
        if n_features < 1:
            raise ModelError("n_features must be >= 1")
        if not (1 <= int(n_bins) <= 256):
            # quantized bins pack into uint8 so ensembles and the shm train
            # pool can share one bins matrix across members
            raise ModelError(f"n_bins must be in [1, 256], got {n_bins}")
        self.n_features = int(n_features)
        self.n_tables = int(n_tables)
        self.table_bits = int(table_bits)
        self.table_size = 1 << self.table_bits
        self.n_bins = int(n_bins)
        # threshold heuristic: scale with sqrt of the summand count, not the
        # count itself -- with ~1k features summed per decision, a linear
        # theta keeps every sample below threshold forever and training
        # degenerates into label counting
        self.theta = float(theta) if theta is not None else 1.93 * n_features**0.5 + 14
        self.weight_clamp = int(weight_clamp)
        self.seed = int(seed)
        self.weights = np.zeros((self.n_tables, self.table_size), dtype=np.int32)

        rng = np.random.default_rng(self.seed)
        self._salts = rng.integers(0, 2**63, size=self.n_features, dtype=np.uint64)
        self._tables = np.arange(self.n_features, dtype=np.int64) % self.n_tables

    # -- hashing ---------------------------------------------------------

    def _quantize(self, X: np.ndarray) -> np.ndarray:
        """Member-config view of :func:`quantize_bins` (uint8 buckets)."""
        return quantize_bins(X, self.n_bins)

    def _check_bins(self, bins: np.ndarray) -> np.ndarray:
        bins = np.asarray(bins)
        if bins.ndim != 2 or bins.shape[1] != self.n_features:
            raise ModelError(
                f"bins shape {bins.shape} does not match n_features={self.n_features}"
            )
        if bins.dtype != np.uint8:
            raise ModelError(f"quantized bins must be uint8, got {bins.dtype}")
        return bins

    def _table_offsets(self) -> np.ndarray:
        """Per-feature flat-index base (table id * table size), int32."""
        return (self._tables * self.table_size).astype(np.int32)

    def _flat_from_bins(self, bins: np.ndarray) -> np.ndarray:
        """Flat weight index per (sample, feature) from quantized bins, as
        int32 — the weight space is n_tables * table_size entries, far below
        2**31, and the narrower dtype halves every training-epoch gather."""
        bins = self._check_bins(bins)
        if _native.available():
            return _native.hash_indices(
                np.ascontiguousarray(bins),
                self._salts,
                self._table_offsets(),
                self.table_size - 1,
            )
        # bins are small non-negative ints, so the uint64 upcast is the same
        # bits the old int64 view produced; the hash then runs in place
        h = bins.astype(np.uint64)
        with np.errstate(over="ignore"):
            h *= _GOLDEN
            h += self._salts[None, :]
            h *= _MIX
        h >>= np.uint64(17)
        out = h.view(np.int64)  # free reinterpret: values are < 2**47 here
        out &= self.table_size - 1
        out += self._tables[None, :] * self.table_size
        return out.astype(np.int32)

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features:
            raise ModelError(
                f"input shape {X.shape} does not match n_features={self.n_features}"
            )
        return X

    def _flat_indices(self, X: np.ndarray) -> np.ndarray:
        return self._flat_from_bins(self._quantize(self._check_X(X)))

    # -- inference -------------------------------------------------------

    def decision(
        self,
        X: np.ndarray | None,
        *,
        batch_size: int | None = None,
        bins: np.ndarray | None = None,
    ) -> np.ndarray:
        """Signed margin per sample.

        Pass ``bins`` (a precomputed :func:`quantize_bins` matrix) to skip
        the quantize pass — ensemble scoring quantizes once and shares the
        result across members, which is bit-identical because quantization
        is salt-free.  The numpy path materializes a ``(n_samples,
        n_features)`` index matrix, so large matrices are processed in
        ``batch_size`` chunks (default :data:`DEFAULT_BATCH_SIZE`); per-row
        sums are independent, so chunking is bit-identical to one shot.
        The native path fuses hash+gather+sum and never materializes the
        index matrix at all.
        """
        if bins is None:
            bins = self._quantize(self._check_X(X))
        else:
            bins = self._check_bins(bins)
        w = np.ascontiguousarray(self.weights.ravel())
        if _native.available():
            margins = _native.margins_from_bins(
                w,
                np.ascontiguousarray(bins),
                self._salts,
                self._table_offsets(),
                self.table_size - 1,
            )
            return margins.astype(np.float64)
        batch = batch_size if batch_size and batch_size > 0 else DEFAULT_BATCH_SIZE
        n = bins.shape[0]
        if n <= batch:
            flat = self._flat_from_bins(bins)
            return w[flat].sum(axis=1).astype(np.float64)
        out = np.empty(n, dtype=np.float64)
        for start in range(0, n, batch):
            flat = self._flat_from_bins(bins[start : start + batch])
            out[start : start + batch] = w[flat].sum(axis=1)
        return out

    def predict(self, X: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """+1 attack / -1 benign per sample (0 margin counts as benign)."""
        return np.where(self.decision(X, batch_size=batch_size) > 0, 1, -1).astype(np.int64)

    # -- training --------------------------------------------------------

    def _check_labels(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y)
        if set(np.unique(y)) - {-1, 1}:
            raise ModelError("labels must be -1 or +1")
        return y.astype(np.int64, copy=False)

    def fit_epoch(
        self, X: np.ndarray, y: np.ndarray, *, shuffle_rng=None, kernel: str = "auto"
    ) -> int:
        """One online pass; returns the number of weight updates made.

        ``kernel`` selects the execution plan (``auto``, ``native``,
        ``blocked``, or ``reference``); every online kernel produces
        bit-identical weights, which the equivalence tests pin.  Standalone
        calls recompute the hash indices — :meth:`fit` computes them once
        and reuses them across every epoch.
        """
        y = self._check_labels(y)
        plan = TrainPlan.from_flat(self._flat_indices(X))
        order = np.arange(len(y))
        if shuffle_rng is not None:
            shuffle_rng.shuffle(order)
        return self._run_online_epoch(plan, y, order, kernel)

    def _run_online_epoch(
        self, plan: TrainPlan, y: np.ndarray, order: np.ndarray, kernel: str
    ) -> int:
        fn = ONLINE_KERNELS[resolve_kernel(kernel)]
        return fn(self.weights.ravel(), plan, y, order, self.theta, self.weight_clamp)

    def partial_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        seed: int | None = None,
        kernel: str = "auto",
        shuffle: bool = True,
    ) -> int:
        """One incremental online pass over a labeled batch; returns the
        number of weight updates made.

        This is the streaming-learning entry point: weights are updated in
        place starting from their current values, so repeated calls fold
        labeled feedback batches into a served model without retraining from
        scratch.  With the default ``seed`` (the model's own) one
        ``partial_fit`` pass over a corpus is **bit-identical** to the first
        epoch of :meth:`fit` on that corpus — the property tests pin this,
        which is what lets the drift supervisor reuse the batch kernels
        verbatim.
        """
        y = self._check_labels(y)
        plan = TrainPlan.from_flat(self._flat_indices(X))
        order = np.arange(len(y))
        if shuffle:
            rng = np.random.default_rng(self.seed if seed is None else seed)
            rng.shuffle(order)
        return self._run_online_epoch(plan, y, order, kernel)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 20,
        seed: int | None = None,
        mode: str = "online",
        kernel: str = "auto",
        minibatch_size: int | None = None,
        bins: np.ndarray | None = None,
    ) -> list[int]:
        """Train until an epoch makes no misprediction-driven updates or the
        epoch budget runs out; returns per-epoch update counts.

        Label validation and hash-index computation run **once** here and are
        reused by every epoch.  ``mode="online"`` (default) is the sequential
        threshold rule, bit-identical for every ``kernel``;
        ``mode="minibatch"`` applies the rule per mini-batch — a different
        but accuracy-equivalent training order.  ``bins`` optionally supplies
        the precomputed (salt-free) :func:`quantize_bins` matrix for ``X`` so
        ensemble trainers quantize once per matrix instead of once per
        member; the shared-memory pool passes an attached read-only view.
        """
        if mode not in FIT_MODES:
            raise ModelError(f"unknown fit mode {mode!r}; expected one of {FIT_MODES}")
        if mode == "online":
            kernel = resolve_kernel(kernel)
        y = self._check_labels(y)
        if bins is None:
            bins = self._quantize(self._check_X(X))
        plan = TrainPlan.from_flat(self._flat_from_bins(bins))
        w = self.weights.ravel()
        rng = np.random.default_rng(self.seed if seed is None else seed)
        n = len(y)
        history = []
        for _ in range(epochs):
            order = np.arange(n)
            rng.shuffle(order)
            if mode == "minibatch":
                kwargs = {} if minibatch_size is None else {"batch_size": minibatch_size}
                updates = fit_epoch_minibatch(
                    w, plan, y, order, self.theta, self.weight_clamp, **kwargs
                )
            else:
                updates = self._run_online_epoch(plan, y, order, kernel)
            history.append(updates)
            if updates == 0:
                break
        return history

    # -- persistence -----------------------------------------------------

    def save(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            version=MODEL_VERSION,
            weights=self.weights,
            salts=self._salts,
            config=np.array(
                [
                    self.n_features,
                    self.n_tables,
                    self.table_bits,
                    self.n_bins,
                    self.weight_clamp,
                    self.seed,
                ],
                dtype=np.int64,
            ),
            theta=np.float64(self.theta),
        )

    #: npz keys a saved model must carry; anything less is a truncated or
    #: foreign file, not a model
    _REQUIRED_KEYS = ("version", "weights", "salts", "config", "theta")

    @classmethod
    def load(cls, path) -> "HashedPerceptron":
        """Load a saved model, validating every field before trusting it.

        Corrupt, truncated, or foreign files raise :class:`ModelError` with a
        specific reason — never a raw ``zipfile``/``pickle``/``KeyError`` —
        so the artifact loader and serving layer can refuse them cleanly.
        """
        try:
            with np.load(path) as doc:
                missing = [k for k in cls._REQUIRED_KEYS if k not in doc.files]
                if missing:
                    raise ModelError(f"{path}: model file missing keys {missing}")
                if int(doc["version"]) != MODEL_VERSION:
                    raise ModelError(
                        f"{path}: unsupported model version {int(doc['version'])}, "
                        f"expected {MODEL_VERSION}"
                    )
                config = np.asarray(doc["config"])
                if config.shape != (6,):
                    raise ModelError(
                        f"{path}: config must hold 6 values, got shape {config.shape}"
                    )
                n_features, n_tables, table_bits, n_bins, clamp, seed = (
                    int(v) for v in config
                )
                if not (1 <= table_bits <= 30):
                    raise ModelError(f"{path}: implausible table_bits {table_bits}")
                if not (1 <= n_tables <= 1 << 16):
                    raise ModelError(f"{path}: implausible n_tables {n_tables}")
                theta = float(doc["theta"])
                if not np.isfinite(theta) or theta < 0:
                    raise ModelError(f"{path}: theta {theta} is not a finite non-negative value")
                model = cls(
                    n_features,
                    n_tables=n_tables,
                    table_bits=table_bits,
                    n_bins=n_bins,
                    theta=theta,
                    weight_clamp=clamp,
                    seed=seed,
                )
                weights = np.asarray(doc["weights"])
                if weights.shape != model.weights.shape:
                    raise ModelError(
                        f"{path}: weights shape {weights.shape} does not match "
                        f"config shape {model.weights.shape}"
                    )
                if not np.issubdtype(weights.dtype, np.integer):
                    raise ModelError(f"{path}: weights dtype {weights.dtype} is not integral")
                salts = np.asarray(doc["salts"])
                if salts.shape != (model.n_features,):
                    raise ModelError(
                        f"{path}: salts shape {salts.shape} does not match "
                        f"n_features={model.n_features}"
                    )
                if salts.dtype != np.uint64:
                    raise ModelError(f"{path}: salts dtype {salts.dtype} is not uint64")
                model.weights = weights.astype(np.int32)
                model._salts = salts
        except ModelError:
            raise
        except Exception as exc:
            raise ModelError(f"cannot load model from {path}: {exc}") from exc
        return model


# ---------------------------------------------------------------------------
# batched scoring over ensembles and trace groups
# ---------------------------------------------------------------------------


def ensemble_margins(
    models,
    X: np.ndarray,
    *,
    batch_size: int | None = None,
    scales=None,
) -> np.ndarray:
    """Per-sample margin averaged over ensemble members, each normalized by
    its own mean magnitude so no member dominates.

    By default the normalizing magnitude is the mean ``|margin|`` of the
    batch being scored, which makes the result depend on *what else* is in
    the batch.  Pass ``scales`` (one positive float per member, e.g. the
    mean training-set magnitude recorded in a model artifact) to pin the
    normalization: per-sample margins are then independent of batching, so
    a serving path that coalesces arbitrary requests into micro-batches is
    bit-identical to scoring the whole corpus at once.
    """
    if not models:
        raise ModelError("ensemble is empty")
    if scales is not None and len(scales) != len(models):
        raise ModelError(
            f"got {len(scales)} margin scales for {len(models)} ensemble members"
        )
    bins = _shared_quantize(models, X)
    total = np.zeros(np.asarray(X).shape[0], dtype=np.float64)
    for k, model in enumerate(models):
        d = model.decision(X, batch_size=batch_size, bins=bins)
        scale = float(scales[k]) if scales is not None else np.abs(d).mean()
        total += d / (scale + 1e-9)
    return total / len(models)


def _shared_quantize(models, X: np.ndarray) -> np.ndarray | None:
    """One :func:`quantize_bins` matrix for the whole ensemble, or None when
    members disagree on quantization config (each then quantizes itself).
    Quantization is salt-free, so sharing it is bit-identical."""
    first = models[0]
    if any(
        m.n_bins != first.n_bins or m.n_features != first.n_features for m in models
    ):
        return None
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[1] != first.n_features:
        raise ModelError(
            f"input shape {X.shape} does not match n_features={first.n_features}"
        )
    return quantize_bins(X, first.n_bins)


def ensemble_partial_fit(
    models,
    X: np.ndarray,
    y: np.ndarray,
    *,
    seed: int | None = None,
    kernel: str = "auto",
) -> list[int]:
    """One :meth:`HashedPerceptron.partial_fit` pass per ensemble member;
    returns per-member update counts.

    With ``seed=None`` every member shuffles with its own model seed, so the
    result is bit-identical to the first epoch each member's :meth:`fit`
    would have run.  Passing ``seed`` decorrelates the visit orders across
    repeated feedback batches (member ``k`` uses ``seed + 17 * k``).
    """
    if not models:
        raise ModelError("ensemble is empty")
    return [
        model.partial_fit(
            X, y, seed=None if seed is None else seed + 17 * k, kernel=kernel
        )
        for k, model in enumerate(models)
    ]


def margin_scales(models, X: np.ndarray, *, batch_size: int | None = None) -> list[float]:
    """Per-member mean ``|margin|`` over a reference matrix (typically the
    training set) — the fixed normalization constants stored in a model
    artifact so serving-time margins do not depend on batch composition."""
    if not models:
        raise ModelError("ensemble is empty")
    bins = _shared_quantize(models, X)
    return [
        float(np.abs(model.decision(X, batch_size=batch_size, bins=bins)).mean())
        for model in models
    ]


def trace_verdicts(margins: np.ndarray, groups: np.ndarray, n_traces: int) -> np.ndarray:
    """Mean per-interval margin per trace -> +1/-1 verdict (0 for traces with
    no samples).  One ``bincount`` pass instead of a per-trace mask loop."""
    margins = np.asarray(margins, dtype=np.float64)
    groups = np.asarray(groups, dtype=np.int64)
    if margins.shape != groups.shape:
        raise ModelError(
            f"margins shape {margins.shape} does not match groups shape {groups.shape}"
        )
    if groups.size and (groups.min() < 0 or groups.max() >= n_traces):
        raise ModelError("groups index outside [0, n_traces)")
    sums = np.bincount(groups, weights=margins, minlength=n_traces)
    counts = np.bincount(groups, minlength=n_traces)
    verdicts = np.zeros(n_traces, dtype=np.int64)
    seen = counts > 0
    with np.errstate(invalid="ignore"):
        verdicts[seen] = np.where(sums[seen] / counts[seen] > 0, 1, -1)
    return verdicts
