"""Optional C fast path for the hot perceptron loops, loaded via ctypes.

The three exported routines mirror the numpy implementations *exactly* —
same integer arithmetic, same uint64 hash mixing, same sequential update
order — so every result is bit-identical to the pure-numpy path and the
kernel-equivalence tests can pin one against the other.  What changes is
only the constant factor: the epoch loop spends its time in ~1.4M random
gathers into a 256 KB weight table per pass, which C does at L2 speed while
numpy pays a Python-level restart per weight update.

Compilation is lazy and cached: the first call compiles the embedded source
with ``cc -O2 -shared -fPIC`` into a content-addressed ``.so`` under
``REPRO_NATIVE_DIR`` (default: ``_build/`` next to this file), so every
later process — including forked pool workers — just ``dlopen``s it.  No
compiler, a failed compile, or ``REPRO_NATIVE=off`` all degrade to the
numpy kernels; nothing in the system *requires* the fast path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from ..telemetry import get_logger, log_event

logger = get_logger("repro.model.native")

#: bump when the C source changes incompatibly; part of the cache key
NATIVE_VERSION = 1

_SOURCE = r"""
#include <stdint.h>

/* One online epoch of the perceptron threshold rule, sequential over
 * `order`, exactly like kernels.fit_epoch_reference: gather the margin,
 * update on target*margin <= theta (add target once per index occurrence,
 * then clamp the touched entries).  Returns the number of updates. */
int64_t fit_epoch(int32_t *w, const int32_t *flat, const int64_t *order,
                  const int64_t *y, int64_t n, int64_t f, double theta,
                  int32_t clamp) {
    int64_t updates = 0;
    for (int64_t s = 0; s < n; s++) {
        const int64_t i = order[s];
        const int32_t *row = flat + i * f;
        int64_t margin = 0;
        for (int64_t j = 0; j < f; j++) margin += w[row[j]];
        const int64_t target = y[i];
        if ((double)(target * margin) <= theta) {
            const int32_t t = (int32_t)target;
            for (int64_t j = 0; j < f; j++) w[row[j]] += t;
            for (int64_t j = 0; j < f; j++) {
                int32_t v = w[row[j]];
                if (v > clamp) v = clamp;
                if (v < -clamp) v = -clamp;
                w[row[j]] = v;
            }
            updates++;
        }
    }
    return updates;
}

/* Flat weight indices from quantized bins for one member: the same
 * splitmix-style mixing as HashedPerceptron._indices, with the per-feature
 * table offset folded in.  uint64 arithmetic wraps exactly like numpy's. */
void hash_indices(const uint8_t *bins, const uint64_t *salts,
                  const int32_t *table_off, int64_t n, int64_t f,
                  uint64_t mask, int32_t *out) {
    const uint64_t golden = 0x9E3779B97F4A7C15ULL;
    const uint64_t mix = 0xBF58476D1CE4E5B9ULL;
    for (int64_t i = 0; i < n; i++) {
        const uint8_t *brow = bins + i * f;
        int32_t *orow = out + i * f;
        for (int64_t j = 0; j < f; j++) {
            uint64_t h = (uint64_t)brow[j];
            h *= golden;
            h += salts[j];
            h *= mix;
            h >>= 17;
            orow[j] = (int32_t)(h & mask) + table_off[j];
        }
    }
}

/* Per-row signed margins for one member, fused hash+gather+sum: avoids
 * materializing the (n, f) index matrix the numpy scoring path needs. */
void margins_from_bins(const int32_t *w, const uint8_t *bins,
                       const uint64_t *salts, const int32_t *table_off,
                       int64_t n, int64_t f, uint64_t mask, int64_t *out) {
    const uint64_t golden = 0x9E3779B97F4A7C15ULL;
    const uint64_t mix = 0xBF58476D1CE4E5B9ULL;
    for (int64_t i = 0; i < n; i++) {
        const uint8_t *brow = bins + i * f;
        int64_t margin = 0;
        for (int64_t j = 0; j < f; j++) {
            uint64_t h = (uint64_t)brow[j];
            h *= golden;
            h += salts[j];
            h *= mix;
            h >>= 17;
            margin += w[(int32_t)(h & mask) + table_off[j]];
        }
        out[i] = margin;
    }
}
"""

_lib: ctypes.CDLL | None = None
_load_attempted = False


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "_build"


def _compiler() -> str | None:
    for cc in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cc and shutil.which(cc):
            return cc
    return None


def _compile(so_path: Path) -> bool:
    """Compile the embedded source to ``so_path`` atomically; False on any
    failure (missing compiler, bad flags, read-only filesystem)."""
    cc = _compiler()
    if cc is None:
        log_event(logger, "native.no_compiler")
        return False
    try:
        so_path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=so_path.parent) as tmp:
            src = Path(tmp) / "kernel.c"
            obj = Path(tmp) / "kernel.so"
            src.write_text(_SOURCE)
            proc = subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", str(obj), str(src)],
                capture_output=True,
                timeout=120,
            )
            if proc.returncode != 0:
                log_event(
                    logger,
                    "native.compile_failed",
                    cc=cc,
                    stderr=proc.stderr.decode(errors="replace")[-200:],
                )
                return False
            os.replace(obj, so_path)  # atomic: concurrent compiles converge
        return True
    except (OSError, subprocess.SubprocessError) as exc:
        log_event(logger, "native.compile_failed", cc=cc, stderr=str(exc)[:200])
        return False


def _bind(so_path: Path) -> ctypes.CDLL:
    lib = ctypes.CDLL(str(so_path))
    lib.fit_epoch.restype = ctypes.c_int64
    lib.fit_epoch.argtypes = [
        ctypes.c_void_p,  # w
        ctypes.c_void_p,  # flat
        ctypes.c_void_p,  # order
        ctypes.c_void_p,  # y
        ctypes.c_int64,  # n
        ctypes.c_int64,  # f
        ctypes.c_double,  # theta
        ctypes.c_int32,  # clamp
    ]
    lib.hash_indices.restype = None
    lib.hash_indices.argtypes = [
        ctypes.c_void_p,  # bins
        ctypes.c_void_p,  # salts
        ctypes.c_void_p,  # table_off
        ctypes.c_int64,  # n
        ctypes.c_int64,  # f
        ctypes.c_uint64,  # mask
        ctypes.c_void_p,  # out
    ]
    lib.margins_from_bins.restype = None
    lib.margins_from_bins.argtypes = [
        ctypes.c_void_p,  # w
        ctypes.c_void_p,  # bins
        ctypes.c_void_p,  # salts
        ctypes.c_void_p,  # table_off
        ctypes.c_int64,  # n
        ctypes.c_int64,  # f
        ctypes.c_uint64,  # mask
        ctypes.c_void_p,  # out
    ]
    return lib


def load() -> ctypes.CDLL | None:
    """The bound library, compiling on first use; None when unavailable."""
    global _lib, _load_attempted
    if _lib is not None or _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_NATIVE", "").lower() in ("off", "0", "no"):
        return None
    key = hashlib.sha256(
        f"{NATIVE_VERSION}\n{_SOURCE}".encode()
    ).hexdigest()[:16]
    so_path = _cache_dir() / f"kernel_{key}.so"
    try:
        if not so_path.exists() and not _compile(so_path):
            return None
        _lib = _bind(so_path)
    except OSError as exc:
        log_event(logger, "native.load_failed", error=str(exc)[:200])
        _lib = None
    return _lib


def available() -> bool:
    return load() is not None


# -- array-level wrappers (validate layout, then hand off raw pointers) ----


def _require_c(a: np.ndarray, dtype) -> np.ndarray:
    if a.dtype != dtype or not a.flags.c_contiguous:
        raise ValueError(f"expected C-contiguous {dtype}, got {a.dtype}")
    return a


def fit_epoch(
    w: np.ndarray,
    flat: np.ndarray,
    y: np.ndarray,
    order: np.ndarray,
    theta: float,
    clamp: int,
) -> int:
    lib = load()
    assert lib is not None, "native kernel not available"
    _require_c(w, np.int32)
    _require_c(flat, np.int32)
    order = np.ascontiguousarray(order, dtype=np.int64)
    y = np.ascontiguousarray(y, dtype=np.int64)
    n, f = flat.shape
    return int(
        lib.fit_epoch(
            w.ctypes.data,
            flat.ctypes.data,
            order.ctypes.data,
            y.ctypes.data,
            n,
            f,
            float(theta),
            int(clamp),
        )
    )


def hash_indices(
    bins: np.ndarray, salts: np.ndarray, table_off: np.ndarray, mask: int
) -> np.ndarray:
    lib = load()
    assert lib is not None, "native kernel not available"
    _require_c(bins, np.uint8)
    _require_c(salts, np.uint64)
    _require_c(table_off, np.int32)
    n, f = bins.shape
    out = np.empty((n, f), dtype=np.int32)
    lib.hash_indices(
        bins.ctypes.data,
        salts.ctypes.data,
        table_off.ctypes.data,
        n,
        f,
        int(mask),
        out.ctypes.data,
    )
    return out


def margins_from_bins(
    w: np.ndarray, bins: np.ndarray, salts: np.ndarray, table_off: np.ndarray, mask: int
) -> np.ndarray:
    lib = load()
    assert lib is not None, "native kernel not available"
    _require_c(w, np.int32)
    _require_c(bins, np.uint8)
    _require_c(salts, np.uint64)
    _require_c(table_off, np.int32)
    n, f = bins.shape
    out = np.empty(n, dtype=np.int64)
    lib.margins_from_bins(
        w.ctypes.data,
        bins.ctypes.data,
        salts.ctypes.data,
        table_off.ctypes.data,
        n,
        f,
        int(mask),
        out.ctypes.data,
    )
    return out
