"""Versioned, integrity-checked model artifacts.

An *artifact* is everything a scoring process needs to serve traffic without
retraining: the ensemble member weights, the fitted feature normalizer, the
per-member margin scales that pin batch-independent scoring, and a manifest
recording the codec/model/feature-stats versions plus a SHA-256 per payload
file.  The store keeps every published version side by side::

    <root>/
        CURRENT                    # name of the live version (atomic pointer)
        v0001-3fa9c1d2/
            manifest.json          # versions, config, sha256 per file
            normalizer.json
            members/member_0.npz
            members/member_1.npz
        v0002-8c77e0ab/
            ...

Publish is atomic and ordered: the version directory is staged under a
``.tmp`` name, every payload is written and fsynced, the manifest goes in
last, the directory is renamed into place, and only then is ``CURRENT``
swapped (tmp file + ``os.replace``).  A crash at any point leaves either the
previous version live or a ``.tmp`` stager that readers ignore — never a
half-published artifact behind the pointer.

Load refuses rather than guesses: a missing file, a checksum mismatch, or an
unsupported version raises :class:`~repro.errors.ArtifactError` (a
:class:`ModelError`), and :meth:`ArtifactStore.load_with_fallback` walks
older versions newest-first so a corrupted hot swap degrades to the last
good artifact instead of taking the service down.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ArtifactError
from ..features import Normalizer
from ..sim.trace import TRACE_VERSION
from ..telemetry import get_logger, log_event
from .perceptron import MODEL_VERSION, HashedPerceptron, ensemble_margins, trace_verdicts

logger = get_logger("repro.model.artifact")

#: bump when the manifest schema or directory layout changes
ARTIFACT_VERSION = 1

_CURRENT = "CURRENT"
_MANIFEST = "manifest.json"
_NORMALIZER = "normalizer.json"
_MEMBER_DIR = "members"


def _sha256_file(path: Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class LoadedArtifact:
    """A fully verified artifact, ready to score."""

    version: str
    path: Path
    manifest: dict
    models: list[HashedPerceptron]
    normalizer: Normalizer
    scales: list[float]

    @property
    def n_features(self) -> int:
        return int(self.models[0].n_features)

    def score_rows(self, X: np.ndarray, *, batch_size: int | None = None) -> np.ndarray:
        """Per-sample ensemble margins with the artifact's pinned scales —
        independent of how rows are batched."""
        Z = self.normalizer.transform(np.asarray(X, dtype=np.float64))
        return ensemble_margins(self.models, Z, batch_size=batch_size, scales=self.scales)

    def score_traces(
        self, X: np.ndarray, groups: np.ndarray, n_traces: int, *, batch_size: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(margins, per-trace verdicts) for a stacked sample matrix.  The
        serving daemon and the batch evaluator both go through here, which is
        what makes their verdicts bit-identical."""
        margins = self.score_rows(X, batch_size=batch_size)
        return margins, trace_verdicts(margins, groups, n_traces)


@dataclass
class PublishResult:
    version: str
    path: Path
    manifest: dict = field(repr=False)


class ArtifactStore:
    """Directory of versioned artifacts with an atomic ``CURRENT`` pointer."""

    def __init__(self, root):
        self.root = Path(root)

    # -- naming ----------------------------------------------------------

    def versions(self) -> list[str]:
        """Published version names, oldest first (lexicographic: the serial
        prefix makes that creation order)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and p.name.startswith("v") and not p.name.endswith(".tmp")
        )

    def current(self) -> str | None:
        """Name in the ``CURRENT`` pointer, or None when nothing is published."""
        try:
            name = (self.root / _CURRENT).read_text().strip()
        except OSError:
            return None
        return name or None

    def _next_version(self, digest: str) -> str:
        serials = [int(v[1:5]) for v in self.versions() if v[1:5].isdigit()]
        return f"v{(max(serials) + 1 if serials else 1):04d}-{digest[:8]}"

    # -- publish ---------------------------------------------------------

    def publish(
        self,
        models: list[HashedPerceptron],
        normalizer: Normalizer,
        scales: list[float],
        *,
        meta: dict | None = None,
        set_current: bool = True,
    ) -> PublishResult:
        """Stage, verify, and atomically publish a new artifact version.

        With ``set_current=False`` the version is fully published but the
        ``CURRENT`` pointer is left untouched — a **candidate** artifact that
        shadow traffic can score without any live reader seeing it.  Swap it
        in later with :meth:`promote`.
        """
        if not models:
            raise ArtifactError("cannot publish an empty ensemble")
        if len(scales) != len(models):
            raise ArtifactError(
                f"got {len(scales)} margin scales for {len(models)} members"
            )
        widths = {m.n_features for m in models}
        if len(widths) != 1:
            raise ArtifactError(f"ensemble members disagree on n_features: {sorted(widths)}")

        digest_seed = hashlib.sha256()
        for m in models:
            digest_seed.update(m.weights.tobytes())
        version = self._next_version(digest_seed.hexdigest())
        final = self.root / version
        stage = self.root / f"{version}.{os.getpid()}.tmp"
        try:
            (stage / _MEMBER_DIR).mkdir(parents=True)
            files: dict[str, str] = {}
            for k, model in enumerate(models):
                rel = f"{_MEMBER_DIR}/member_{k}.npz"
                model.save(stage / rel)
                _fsync_file(stage / rel)
                files[rel] = _sha256_file(stage / rel)
            normalizer.save(stage / _NORMALIZER)
            _fsync_file(stage / _NORMALIZER)
            files[_NORMALIZER] = _sha256_file(stage / _NORMALIZER)

            manifest = {
                "artifact_version": ARTIFACT_VERSION,
                "model_version": MODEL_VERSION,
                "trace_version": TRACE_VERSION,
                "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                "version": version,
                "n_members": len(models),
                "n_features": models[0].n_features,
                "margin_scales": [float(s) for s in scales],
                "files": files,
                "meta": dict(meta or {}),
            }
            manifest_path = stage / _MANIFEST
            manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            _fsync_file(manifest_path)
            os.rename(stage, final)
        except ArtifactError:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        except OSError as exc:
            shutil.rmtree(stage, ignore_errors=True)
            raise ArtifactError(f"cannot publish artifact under {self.root}: {exc}") from exc
        if set_current:
            self._set_current(version)
        log_event(
            logger,
            "artifact.publish",
            version=version,
            members=len(models),
            n_features=manifest["n_features"],
            current=set_current,
            root=str(self.root),
        )
        return PublishResult(version=version, path=final, manifest=manifest)

    def promote(self, version: str) -> None:
        """Atomically point ``CURRENT`` at an already-published version.

        This is the canary-gate passing move: a candidate published with
        ``set_current=False`` becomes live in one pointer swap, exactly the
        same swap a fresh publish performs.  Unknown versions are refused.
        """
        if version not in self.versions():
            raise ArtifactError(
                f"cannot promote unknown version {version!r} under {self.root}"
            )
        previous = self.current()
        self._set_current(version)
        log_event(logger, "artifact.promote", version=version, previous=previous)

    def _set_current(self, version: str) -> None:
        tmp = self.root / f".{_CURRENT}.{os.getpid()}.tmp"
        try:
            tmp.write_text(version + "\n")
            os.replace(tmp, self.root / _CURRENT)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise ArtifactError(f"cannot update {_CURRENT} pointer: {exc}") from exc

    # -- load ------------------------------------------------------------

    def load(self, version: str | None = None) -> LoadedArtifact:
        """Load and fully verify one version (default: ``CURRENT``).

        Raises :class:`ArtifactError` on any missing file, checksum or
        version mismatch — the artifact is refused whole.
        """
        if version is None:
            version = self.current()
            if version is None:
                raise ArtifactError(f"no {_CURRENT} pointer under {self.root}")
        path = self.root / version
        manifest = self._read_manifest(path)
        self._verify_checksums(path, manifest)

        try:
            normalizer = Normalizer.load(path / _NORMALIZER)
        except Exception as exc:
            raise ArtifactError(f"{version}: bad normalizer stats: {exc}") from exc
        member_rels = sorted(f for f in manifest["files"] if f.startswith(_MEMBER_DIR + "/"))
        if len(member_rels) != int(manifest.get("n_members", -1)):
            raise ArtifactError(
                f"{version}: manifest lists {len(member_rels)} member files "
                f"but n_members={manifest.get('n_members')}"
            )
        models = [HashedPerceptron.load(path / rel) for rel in member_rels]
        widths = {m.n_features for m in models}
        if widths != {int(manifest["n_features"])}:
            raise ArtifactError(
                f"{version}: member widths {sorted(widths)} disagree with "
                f"manifest n_features={manifest['n_features']}"
            )
        scales = [float(s) for s in manifest["margin_scales"]]
        if len(scales) != len(models) or not all(np.isfinite(s) and s >= 0 for s in scales):
            raise ArtifactError(f"{version}: invalid margin_scales {scales}")
        if normalizer.mean.shape[0] != int(manifest["n_features"]):
            raise ArtifactError(
                f"{version}: normalizer width {normalizer.mean.shape[0]} disagrees "
                f"with manifest n_features={manifest['n_features']}"
            )
        log_event(logger, "artifact.load", version=version, members=len(models))
        return LoadedArtifact(
            version=version,
            path=path,
            manifest=manifest,
            models=models,
            normalizer=normalizer,
            scales=scales,
        )

    def _read_manifest(self, path: Path) -> dict:
        try:
            manifest = json.loads((path / _MANIFEST).read_text())
        except OSError as exc:
            raise ArtifactError(f"cannot read manifest under {path}: {exc}") from exc
        except ValueError as exc:
            raise ArtifactError(f"manifest under {path} is not valid JSON: {exc}") from exc
        if not isinstance(manifest, dict):
            raise ArtifactError(f"manifest under {path} is not a JSON object")
        if manifest.get("artifact_version") != ARTIFACT_VERSION:
            raise ArtifactError(
                f"unsupported artifact version {manifest.get('artifact_version')!r} "
                f"under {path}, expected {ARTIFACT_VERSION}"
            )
        if manifest.get("model_version") != MODEL_VERSION:
            raise ArtifactError(
                f"artifact under {path} was built for model version "
                f"{manifest.get('model_version')!r}, this build expects {MODEL_VERSION}"
            )
        for key in ("files", "margin_scales", "n_features", "n_members"):
            if key not in manifest:
                raise ArtifactError(f"manifest under {path} is missing {key!r}")
        return manifest

    def _verify_checksums(self, path: Path, manifest: dict) -> None:
        for rel, expected in sorted(manifest["files"].items()):
            target = path / rel
            if not target.is_file():
                raise ArtifactError(f"artifact file {rel} is missing under {path}")
            actual = _sha256_file(target)
            if actual != expected:
                raise ArtifactError(
                    f"checksum mismatch for {rel} under {path}: "
                    f"manifest says {expected[:12]}…, file is {actual[:12]}…"
                )

    def load_with_fallback(self, *, skip: set[str] | None = None) -> LoadedArtifact:
        """Load ``CURRENT``; on failure walk older versions newest-first and
        serve the first one that verifies.  This is the hot-reload safety
        net: a corrupt publish degrades to the last good artifact."""
        skip = skip or set()
        tried: list[str] = []
        candidates: list[str] = []
        current = self.current()
        if current is not None and current not in skip:
            candidates.append(current)
        for version in reversed(self.versions()):
            if version not in candidates and version not in skip:
                candidates.append(version)
        for version in candidates:
            try:
                loaded = self.load(version)
            except ArtifactError as exc:
                tried.append(version)
                # WARNING, not INFO: every skipped version is a bad publish
                # an operator must eventually clean up, and walking past one
                # silently is how a store fills with corrupt artifacts
                log_event(
                    logger,
                    "artifact.fallback",
                    level=logging.WARNING,
                    version=version,
                    error=type(exc).__name__,
                    reason=str(exc)[:160],
                )
                continue
            if tried:
                log_event(
                    logger,
                    "artifact.degraded",
                    level=logging.WARNING,
                    serving=version,
                    refused=",".join(tried),
                )
            return loaded
        raise ArtifactError(
            f"no loadable artifact under {self.root} "
            f"(tried {tried or 'nothing — store is empty'})"
        )
