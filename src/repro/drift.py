"""Windowed drift detection over served margins and labeled feedback.

The serving daemon scores traffic with a frozen artifact; this module is the
instrument that notices when the traffic stops looking like what that
artifact was trained on.  A :class:`DriftMonitor` ingests one event per
scored trace — the per-trace ensemble margin, plus the true label when an
operator (or the replay harness) supplies feedback — and evaluates fixed-size
windows against a **reference window** frozen right after the current model
went live:

- **PSI** (population stability index) of the margin distribution against
  the reference histogram.  Bin edges are reference-margin deciles, so the
  statistic is scale-free and robust to the margin units changing between
  models.
- **Margin mean shift** in reference-standard-deviation units.
- **Rolling accuracy** over labeled feedback (only when the window holds at
  least ``min_feedback`` labeled events — sparse labels never fire a
  verdict on noise).
- **Per-family false-positive rate** for benign families with enough
  labeled traffic, so one workload turning "attack-looking" is attributed,
  not averaged away.

A window that trips any threshold produces a drift verdict: the window's
raw statistics (and its labeled events) are quarantined to disk for offline
triage, a WARNING telemetry event is emitted, and the report is handed to
whoever is listening — in the serving daemon, the retrain supervisor.  A
rolling accuracy below the (lower) ``rollback_floor`` additionally raises
the rollback signal: the live model itself is bad, not just stale.

The monitor is intentionally synchronous and allocation-light: the daemon
calls it from the event-loop thread after every scored batch.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .errors import DriftError
from .telemetry import get_logger, log_event

logger = get_logger("repro.drift")

#: bump when the quarantine-record schema changes
DRIFT_RECORD_VERSION = 1


@dataclass
class DriftConfig:
    """Thresholds for the windowed drift verdicts.

    ``window`` counts *scored traces*; a window evaluates when it fills.
    Thresholds are deliberately conservative defaults — the replay bench is
    the place they are tuned against injected shifts.
    """

    #: scored traces per evaluation window (<= 0 disables the monitor)
    window: int = 200
    #: labeled events a window needs before accuracy-based verdicts fire
    min_feedback: int = 20
    #: PSI of the margin distribution vs the reference above this is drift
    psi_threshold: float = 0.25
    #: |margin mean shift| in reference-std units above this is drift
    margin_sigma: float = 3.0
    #: rolling feedback accuracy below this is drift (model is stale)
    accuracy_floor: float = 0.75
    #: rolling feedback accuracy below this raises the rollback signal
    #: (model is actively bad, not just stale)
    rollback_floor: float = 0.5
    #: benign-family FPR above this (with enough labels) is drift
    family_fpr: float = 0.5
    #: labeled events a single family needs for its FPR to count
    min_family: int = 8
    #: windows to stay quiet after a verdict, so one long degradation is one
    #: verdict + one quarantine record, not a verdict per window
    cooldown_windows: int = 2
    #: histogram bins for the PSI statistic (reference-decile edges)
    psi_bins: int = 10
    #: where suspect windows are written (None = telemetry only)
    quarantine_dir: str | None = None

    def validate(self) -> "DriftConfig":
        if self.window < 0:
            raise DriftError(f"window must be >= 0, got {self.window}")
        if self.min_feedback < 1:
            raise DriftError(f"min_feedback must be >= 1, got {self.min_feedback}")
        if not (0.0 <= self.rollback_floor <= self.accuracy_floor <= 1.0):
            raise DriftError(
                "need 0 <= rollback_floor <= accuracy_floor <= 1, got "
                f"{self.rollback_floor} / {self.accuracy_floor}"
            )
        if self.psi_threshold <= 0 or self.margin_sigma <= 0:
            raise DriftError("psi_threshold and margin_sigma must be positive")
        if self.psi_bins < 2:
            raise DriftError(f"psi_bins must be >= 2, got {self.psi_bins}")
        return self


@dataclass
class Reference:
    """Frozen margin distribution of the first window after a model goes
    live: the 'normal' every later window is compared against."""

    mean: float
    std: float
    edges: np.ndarray  # (psi_bins + 1,) histogram edges, outer bins open
    probs: np.ndarray  # (psi_bins,) reference bin probabilities
    frozen_at_window: int = 0


@dataclass
class DriftReport:
    """What one completed window looked like, and whether it drifted."""

    window: int
    scored: int
    labeled: int
    drifted: bool
    rollback: bool
    reasons: list[str]
    psi: float | None
    margin_mean: float
    margin_std: float
    ref_mean: float | None
    ref_std: float | None
    rolling_accuracy: float | None
    per_family: dict[str, dict] = field(default_factory=dict)
    quarantined_to: str | None = None

    def describe(self) -> dict:
        return {
            "window": self.window,
            "scored": self.scored,
            "labeled": self.labeled,
            "drifted": self.drifted,
            "rollback": self.rollback,
            "reasons": list(self.reasons),
            "psi": self.psi,
            "margin_mean": self.margin_mean,
            "margin_std": self.margin_std,
            "ref_mean": self.ref_mean,
            "ref_std": self.ref_std,
            "rolling_accuracy": self.rolling_accuracy,
            "per_family": self.per_family,
            "quarantined_to": self.quarantined_to,
        }


def psi(ref_probs: np.ndarray, cur_probs: np.ndarray) -> float:
    """Population stability index between two binned distributions.

    Both inputs are probability vectors over the same bins; zero cells are
    smoothed so a bin emptying out contributes a large-but-finite term
    instead of an infinity.
    """
    ref = np.asarray(ref_probs, dtype=np.float64)
    cur = np.asarray(cur_probs, dtype=np.float64)
    if ref.shape != cur.shape:
        raise DriftError(f"PSI bin shapes disagree: {ref.shape} vs {cur.shape}")
    eps = 1e-4
    ref = np.clip(ref, eps, None)
    cur = np.clip(cur, eps, None)
    ref = ref / ref.sum()
    cur = cur / cur.sum()
    return float(((cur - ref) * np.log(cur / ref)).sum())


def _decile_edges(margins: np.ndarray, n_bins: int) -> np.ndarray:
    """Reference-quantile histogram edges with open outer bins.  Degenerate
    (near-constant) references collapse to whatever unique edges exist —
    PSI still works, just with fewer effective bins."""
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    inner = np.unique(np.quantile(margins, qs))
    return np.concatenate(([-np.inf], inner, [np.inf]))


class DriftMonitor:
    """Accumulates per-trace scoring events and evaluates full windows.

    Call :meth:`observe` once per scored trace and :meth:`maybe_evaluate`
    afterwards; it returns a :class:`DriftReport` exactly when a window
    completed, ``None`` otherwise.  The first completed window after
    construction (or :meth:`reset`) freezes the reference and never yields
    a verdict — a freshly promoted model defines its own normal.
    """

    def __init__(self, config: DriftConfig | None = None):
        self.config = (config or DriftConfig()).validate()
        self.reference: Reference | None = None
        self._margins: list[float] = []
        self._feedback: list[tuple[str | None, int, int]] = []  # (family, label, verdict)
        self._window_index = 0
        self._cooldown = 0
        # counters for /metricsz
        self.scored_total = 0
        self.feedback_total = 0
        self.windows_evaluated = 0
        self.drift_verdicts = 0
        self.rollback_signals = 0
        self.quarantined_windows = 0
        self.last_report: DriftReport | None = None

    # -- ingestion -------------------------------------------------------

    def observe(
        self,
        margin: float,
        verdict: int,
        *,
        label: int | None = None,
        family: str | None = None,
    ) -> None:
        """Record one scored trace; ``label`` (±1) marks labeled feedback."""
        if self.config.window <= 0:
            return
        self.scored_total += 1
        self._margins.append(float(margin))
        if label is not None:
            if label not in (-1, 1):
                raise DriftError(f"feedback label must be -1 or +1, got {label!r}")
            self.feedback_total += 1
            self._feedback.append((family, int(label), int(verdict)))

    # -- evaluation ------------------------------------------------------

    def window_fill(self) -> int:
        return len(self._margins)

    def maybe_evaluate(self) -> DriftReport | None:
        """Evaluate and clear the current window if it is full."""
        if self.config.window <= 0 or len(self._margins) < self.config.window:
            return None
        return self._evaluate()

    def _evaluate(self) -> DriftReport:
        cfg = self.config
        margins = np.asarray(self._margins, dtype=np.float64)
        feedback = list(self._feedback)
        window = self._window_index
        self._margins = []
        self._feedback = []
        self._window_index += 1
        self.windows_evaluated += 1

        mean = float(margins.mean())
        std = float(margins.std())

        if self.reference is None:
            edges = _decile_edges(margins, cfg.psi_bins)
            counts, _ = np.histogram(margins, bins=edges)
            self.reference = Reference(
                mean=mean,
                std=std,
                edges=edges,
                probs=counts / max(counts.sum(), 1),
                frozen_at_window=window,
            )
            log_event(
                logger,
                "drift.reference",
                window=window,
                mean=f"{mean:.4f}",
                std=f"{std:.4f}",
                bins=len(edges) - 1,
            )
            report = DriftReport(
                window=window,
                scored=len(margins),
                labeled=len(feedback),
                drifted=False,
                rollback=False,
                reasons=[],
                psi=None,
                margin_mean=mean,
                margin_std=std,
                ref_mean=None,
                ref_std=None,
                rolling_accuracy=self._accuracy(feedback),
            )
            self.last_report = report
            return report

        ref = self.reference
        reasons: list[str] = []
        counts, _ = np.histogram(margins, bins=ref.edges)
        psi_value = psi(ref.probs, counts / max(counts.sum(), 1))
        if psi_value > cfg.psi_threshold:
            reasons.append(f"psi={psi_value:.3f}>{cfg.psi_threshold}")
        shift = abs(mean - ref.mean) / max(ref.std, 1e-9)
        if shift > cfg.margin_sigma:
            reasons.append(f"margin_shift={shift:.2f}sigma>{cfg.margin_sigma}")

        accuracy = self._accuracy(feedback) if len(feedback) >= cfg.min_feedback else None
        if accuracy is not None and accuracy < cfg.accuracy_floor:
            reasons.append(f"accuracy={accuracy:.3f}<{cfg.accuracy_floor}")
        rollback = accuracy is not None and accuracy < cfg.rollback_floor

        per_family = self._per_family(feedback)
        for fam, cell in sorted(per_family.items()):
            fpr = cell.get("false_positive_rate")
            if (
                fpr is not None
                and cell["labeled"] >= cfg.min_family
                and fpr > cfg.family_fpr
            ):
                reasons.append(f"family_fpr:{fam}={fpr:.2f}>{cfg.family_fpr}")

        cooling = self._cooldown > 0
        if cooling:
            self._cooldown -= 1
        drifted = bool(reasons) and not cooling
        report = DriftReport(
            window=window,
            scored=len(margins),
            labeled=len(feedback),
            drifted=drifted,
            rollback=rollback,
            reasons=reasons,
            psi=psi_value,
            margin_mean=mean,
            margin_std=std,
            ref_mean=ref.mean,
            ref_std=ref.std,
            rolling_accuracy=accuracy,
            per_family=per_family,
        )
        if drifted:
            self.drift_verdicts += 1
            self._cooldown = cfg.cooldown_windows
            report.quarantined_to = self._quarantine(report, margins, feedback)
            log_event(
                logger,
                "drift.verdict",
                level=logging.WARNING,
                window=window,
                reasons=";".join(reasons),
                psi=f"{psi_value:.3f}",
                accuracy="-" if accuracy is None else f"{accuracy:.3f}",
                quarantined=report.quarantined_to or "-",
            )
        else:
            log_event(
                logger,
                "drift.window",
                level=logging.DEBUG,
                window=window,
                psi=f"{psi_value:.3f}",
                mean=f"{mean:.3f}",
                accuracy="-" if accuracy is None else f"{accuracy:.3f}",
                suppressed=";".join(reasons) if reasons else "-",
            )
        if rollback:
            self.rollback_signals += 1
            log_event(
                logger,
                "drift.rollback_signal",
                level=logging.WARNING,
                window=window,
                accuracy=f"{accuracy:.3f}",
                floor=cfg.rollback_floor,
            )
        self.last_report = report
        return report

    @staticmethod
    def _accuracy(feedback: list[tuple[str | None, int, int]]) -> float | None:
        if not feedback:
            return None
        correct = sum(1 for _, label, verdict in feedback if label == verdict)
        return correct / len(feedback)

    @staticmethod
    def _per_family(feedback) -> dict[str, dict]:
        cells: dict[str, dict] = {}
        for family, label, verdict in feedback:
            fam = family or "?"
            cell = cells.setdefault(
                fam, {"kind": "attack" if label > 0 else "benign", "labeled": 0, "correct": 0, "flagged": 0}
            )
            cell["labeled"] += 1
            cell["correct"] += int(label == verdict)
            cell["flagged"] += int(verdict == 1)
        out: dict[str, dict] = {}
        for fam, cell in cells.items():
            doc = {
                "kind": cell["kind"],
                "labeled": cell["labeled"],
                "accuracy": cell["correct"] / cell["labeled"],
            }
            if cell["kind"] == "benign":
                doc["false_positive_rate"] = cell["flagged"] / cell["labeled"]
            else:
                doc["miss_rate"] = 1.0 - cell["correct"] / cell["labeled"]
            out[fam] = doc
        return out

    # -- quarantine ------------------------------------------------------

    def _quarantine(
        self, report: DriftReport, margins: np.ndarray, feedback
    ) -> str | None:
        root = self.config.quarantine_dir
        if root is None:
            return None
        record = {
            "record_version": DRIFT_RECORD_VERSION,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "report": report.describe(),
            "margins": [float(m) for m in margins],
            "feedback": [
                {"family": fam, "label": label, "verdict": verdict}
                for fam, label, verdict in feedback
            ],
        }
        path = Path(root) / f"window_{report.window:05d}.json"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            tmp.write_text(json.dumps(record, indent=2) + "\n")
            tmp.replace(path)
        except OSError as exc:
            # quarantine is best-effort forensics; losing a record must not
            # take the verdict (or the daemon) down with it
            log_event(
                logger,
                "drift.quarantine_write_failed",
                level=logging.WARNING,
                window=report.window,
                error=f"{type(exc).__name__}: {exc}",
            )
            return None
        self.quarantined_windows += 1
        return str(path)

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Forget the reference and the partial window.  Call when a new
        model goes live: it defines a new normal, and comparing its margins
        against the old model's reference would fire a false verdict."""
        self.reference = None
        self._margins = []
        self._feedback = []
        self._cooldown = 0
        log_event(logger, "drift.reset", window=self._window_index)

    def counters(self) -> dict:
        """Snapshot for /metricsz."""
        last = self.last_report
        return {
            "window_size": self.config.window,
            "window_fill": len(self._margins),
            "windows_evaluated": self.windows_evaluated,
            "scored": self.scored_total,
            "feedback": self.feedback_total,
            "drift_verdicts": self.drift_verdicts,
            "rollback_signals": self.rollback_signals,
            "quarantined_windows": self.quarantined_windows,
            "reference_frozen": self.reference is not None,
            "last_window": None if last is None else {
                "window": last.window,
                "drifted": last.drifted,
                "reasons": list(last.reasons),
                "psi": last.psi,
                "rolling_accuracy": last.rolling_accuracy,
            },
        }
