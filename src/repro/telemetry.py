"""Structured logging shared by every layer.

Events are single-line ``key=value`` records with a fixed ``event`` field so
they stay grep-able and machine-parseable without pulling in a logging
framework.  Error-ish events carry the shared error taxonomy ``code`` from
:mod:`repro.errors` so logs, quarantine manifests, and metrics all speak the
same vocabulary.

Configuration is idempotent by *inspection*, not by module global alone: the
handler installed by :func:`get_logger` is tagged, and configuration checks
for the tag on the ``repro`` root logger before adding another.  This keeps
re-imports (pytest's rootdir shuffling can import this module twice under
two names) from double-configuring and duplicating every log line.
:func:`reset_logging` tears the handler down again for tests.
"""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager

#: attribute stamped on the handler this module installs, so configuration
#: can be detected even when the module is re-imported under a fresh name
#: (a fresh module gets a fresh ``_CONFIGURED`` global, but the logging
#: hierarchy is process-wide).
_HANDLER_TAG = "_repro_telemetry_handler"

_CONFIGURED = False


def _our_handlers(root: logging.Logger) -> list[logging.Handler]:
    return [h for h in root.handlers if getattr(h, _HANDLER_TAG, False)]


def _ensure_configured() -> None:
    global _CONFIGURED
    root = logging.getLogger("repro")
    installed = _our_handlers(root)
    if _CONFIGURED and installed:
        return
    if not installed:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s"))
        setattr(handler, _HANDLER_TAG, True)
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy, configuring the root
    handler once (stderr, so stdout stays free for machine output)."""
    _ensure_configured()
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger("repro").getChild(name)


def reset_logging() -> None:
    """Remove the handler(s) this module installed and forget the configured
    state.  Test hook: lets suites assert clean (re)configuration without
    leaking handlers between tests or duplicating output."""
    global _CONFIGURED
    root = logging.getLogger("repro")
    for handler in _our_handlers(root):
        root.removeHandler(handler)
        handler.close()
    _CONFIGURED = False


def fmt_event(event: str, **fields: object) -> str:
    """Render ``event=... k=v ...`` with stable field order and quoting of
    values containing whitespace."""
    parts = [f"event={event}"]
    for key, value in fields.items():
        text = str(value)
        if any(ch.isspace() for ch in text):
            text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def log_event(logger: logging.Logger, event: str, *, level: int = logging.INFO, **fields) -> None:
    logger.log(level, fmt_event(event, **fields))


@contextmanager
def span(logger: logging.Logger, name: str, **fields):
    """Log a ``<name>.start`` / ``<name>.done`` pair around a block, with
    elapsed seconds on the closing event (``<name>.error`` + the exception's
    taxonomy code when the block raises).  The yielded dict is merged into
    the closing event, so callers can attach results discovered inside the
    span (counts, cache hits, ...) without a second log call."""
    extra: dict[str, object] = {}
    log_event(logger, f"{name}.start", **fields)
    t0 = time.monotonic()
    try:
        yield extra
    except Exception as exc:
        log_event(
            logger,
            f"{name}.error",
            level=logging.ERROR,
            elapsed=f"{time.monotonic() - t0:.3f}",
            error=f"{type(exc).__name__}: {exc}",
            code=getattr(exc, "code", "-"),
            **fields,
        )
        raise
    log_event(
        logger,
        f"{name}.done",
        elapsed=f"{time.monotonic() - t0:.3f}",
        **{**fields, **extra},
    )
