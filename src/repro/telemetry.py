"""Structured logging shared by every layer.

Events are single-line ``key=value`` records with a fixed ``event`` field so
they stay grep-able and machine-parseable without pulling in a logging
framework.  Error-ish events carry the shared error taxonomy ``code`` from
:mod:`repro.errors` so logs, quarantine manifests, and metrics all speak the
same vocabulary.
"""

from __future__ import annotations

import logging
import sys

_CONFIGURED = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` hierarchy, configuring the root
    handler once (stderr, so stdout stays free for machine output)."""
    global _CONFIGURED
    root = logging.getLogger("repro")
    if not _CONFIGURED:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s"))
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
        _CONFIGURED = True
    if name.startswith("repro"):
        return logging.getLogger(name)
    return root.getChild(name)


def fmt_event(event: str, **fields: object) -> str:
    """Render ``event=... k=v ...`` with stable field order and quoting of
    values containing whitespace."""
    parts = [f"event={event}"]
    for key, value in fields.items():
        text = str(value)
        if any(ch.isspace() for ch in text):
            text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def log_event(logger: logging.Logger, event: str, *, level: int = logging.INFO, **fields) -> None:
    logger.log(level, fmt_event(event, **fields))
