"""CLI entry point: ``python -m repro.pipeline [options]``.

``python -m repro.pipeline save-artifact [options]`` runs the same
train/eval and then publishes a versioned serving artifact (ensemble
weights + feature stats + pinned margin scales, sha256 manifest, atomic
``CURRENT`` pointer) into ``--artifact-root`` for ``repro.serve``.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ReproError
from ..faults import FaultPlan
from . import PipelineConfig, run_pipeline


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.pipeline",
        description="Train and evaluate the PerSpectron detector over a trace-cache corpus.",
    )
    parser.add_argument("--trace-dir", default=".trace_cache", help="corpus directory")
    parser.add_argument("--out", default="runs/latest", help="run output directory")
    parser.add_argument("--test-frac", type=float, default=0.3, help="held-out trace fraction")
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--decode-timeout", type=float, default=30.0, metavar="SECONDS")
    parser.add_argument("--n-tables", type=int, default=16)
    parser.add_argument("--table-bits", type=int, default=12)
    parser.add_argument("--n-bins", type=int, default=16)
    parser.add_argument("--theta", type=float, default=50.0, help="perceptron training threshold")
    parser.add_argument("--n-models", type=int, default=5, help="hash-seed ensemble size")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="ingest worker processes (1 = serial in-process decode)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed decode cache; warm runs skip the salvage decoder",
    )
    parser.add_argument(
        "--dataset-cache-dir",
        default=None,
        metavar="DIR",
        help="memory-mapped assembled-dataset cache; a warm corpus skips "
        "decode and assembly entirely (key sweep + one mmap load)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="rows per scoring chunk (default: model's built-in batch size)",
    )
    parser.add_argument(
        "--fit-mode",
        choices=("online", "minibatch"),
        default="online",
        help="training order: online (bit-identical default) or minibatch "
        "(batched threshold rule; accuracy-equivalent, not bit-identical)",
    )
    parser.add_argument(
        "--fit-kernel",
        choices=("auto", "native", "blocked", "reference"),
        default="auto",
        help="online epoch kernel; all are bit-identical — auto picks the "
        "compiled native kernel when a C compiler is available and falls "
        "back to blocked, reference is the naive per-sample spec kept for "
        "regression triage",
    )
    parser.add_argument(
        "--minibatch-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="samples per minibatch when --fit-mode minibatch (default: kernel default)",
    )
    parser.add_argument(
        "--train-workers",
        type=int,
        default=1,
        help="ensemble-member training processes (1 = serial in-process); "
        "semantics-free like --workers",
    )
    parser.add_argument(
        "--train-shm",
        choices=("auto", "on", "off"),
        default="auto",
        help="pooled-training transport: shared-memory segments (workers "
        "attach to one quantized matrix) vs legacy per-worker broadcast; "
        "bit-identical either way, auto = shm whenever pooled",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help='fault injection, e.g. "io=0.2,corrupt=0.25,seed=7" '
        "(REPRO_FAULTS env var is the fallback)",
    )
    parser.add_argument(
        "--artifact-root",
        default=None,
        metavar="DIR",
        help="publish a versioned serving artifact into this store after "
        "training (implied default runs/artifact for the save-artifact "
        "subcommand)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    save_artifact = bool(argv) and argv[0] == "save-artifact"
    if save_artifact:
        argv = argv[1:]
    parser = build_parser()
    if save_artifact:
        parser.prog += " save-artifact"
    args = parser.parse_args(argv)
    if save_artifact and args.artifact_root is None:
        args.artifact_root = "runs/artifact"
    try:
        faults = FaultPlan.parse(args.faults) if args.faults else FaultPlan.from_env()
    except ValueError as exc:
        parser.error(f"bad fault spec: {exc}")
    config = PipelineConfig(
        trace_dir=args.trace_dir,
        out_dir=args.out,
        test_frac=args.test_frac,
        epochs=args.epochs,
        seed=args.seed,
        decode_timeout_s=args.decode_timeout,
        faults=faults,
        n_tables=args.n_tables,
        table_bits=args.table_bits,
        n_bins=args.n_bins,
        theta=args.theta,
        n_models=args.n_models,
        workers=args.workers,
        cache_dir=args.cache_dir,
        dataset_cache_dir=args.dataset_cache_dir,
        batch_size=args.batch_size,
        fit_mode=args.fit_mode,
        fit_kernel=args.fit_kernel,
        minibatch_size=args.minibatch_size,
        train_workers=args.train_workers,
        train_shm=args.train_shm,
        artifact_root=args.artifact_root,
    )
    try:
        metrics = run_pipeline(config)
    except ReproError as exc:
        print(f"pipeline failed: [{exc.code}] {exc}", file=sys.stderr)
        return 2
    summary = {
        "out": config.out_dir,
        "trace_accuracy": metrics["metrics"]["trace_accuracy"],
        "benign_false_positive_rate": metrics["metrics"]["benign_false_positive_rate"],
        "families": metrics["metrics"]["families"],
        "loaded": metrics["ingest"]["loaded"],
        "quarantined": metrics["ingest"]["quarantined"],
    }
    if metrics.get("artifact"):
        summary["artifact"] = metrics["artifact"]
    if metrics.get("dataset_cache"):
        summary["dataset_cache_hit"] = metrics["dataset_cache"].get("hit", False)
    print(json.dumps(summary, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
