"""End-to-end train/eval pipeline: corpus -> ingest -> features -> perceptron.

``python -m repro.pipeline`` walks the trace cache (serially or through the
:mod:`repro.ingest.pool` worker pool), quarantines undecodable files, trains
the hashed perceptron on a per-class stratified trace split, and writes
``metrics.json`` / ``quarantine.json`` / model artifacts to the run
directory.  One bad input never aborts the run.

With ``cache_dir`` set, decodes are memoized in a
:class:`~repro.cache.FeatureCache`, so warm runs skip the salvage decoder.
Worker count (ingest *and* training), cache state, and the online epoch
kernel never change *what* is computed — only how fast — which the
fault-matrix and train-pool regression tests pin down.  The one opt-in
exception is ``fit_mode="minibatch"``: a different but accuracy-equivalent
training order, gated by the golden-corpus accuracy check.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..faults import FaultPlan
from ..features import Normalizer, assemble_corpus
from ..ingest.retry import RetryPolicy
from ..model import (
    ArtifactStore,
    ensemble_margins,
    margin_scales,
    trace_verdicts,
    train_ensemble,
)
from ..telemetry import get_logger, log_event, span

logger = get_logger("repro.pipeline")

METRICS_VERSION = 4


@dataclass
class PipelineConfig:
    trace_dir: str = ".trace_cache"
    #: corpus file glob, relative to ``trace_dir``; the recursive default
    #: picks up both flat corpora and the payload-hash-sharded layout
    #: ``repro.gen`` writes (``shard_xx/*.pkl``)
    pattern: str = "**/*.pkl"
    out_dir: str = "runs/latest"
    test_frac: float = 0.3
    epochs: int = 20
    seed: int = 7
    decode_timeout_s: float = 30.0
    faults: FaultPlan | None = None
    n_tables: int = 16
    table_bits: int = 12
    n_bins: int = 16
    theta: float = 50.0
    #: hash-seed ensemble size; margins are averaged across members
    n_models: int = 5
    #: ingest worker processes; <= 1 decodes serially in-process
    workers: int = 1
    #: content-addressed decode cache directory; None disables caching
    cache_dir: str | None = None
    #: memory-mapped assembled-dataset cache directory; None disables the
    #: tier.  A warm corpus then skips decode + assembly entirely: the key
    #: sweep hashes file bytes and the matrix arrives via ``np.load(...,
    #: mmap_mode="r")``
    dataset_cache_dir: str | None = None
    #: retry policy for transient read failures (None = defaults)
    retry_policy: RetryPolicy | None = None
    #: rows per scoring chunk; None = model default
    batch_size: int | None = None
    #: training order: "online" (bit-identical default) or "minibatch"
    fit_mode: str = "online"
    #: online epoch kernel: "auto" (native C when a compiler is available,
    #: else blocked), "native", "blocked", or "reference" — all bit-identical
    fit_kernel: str = "auto"
    #: samples per minibatch when fit_mode="minibatch"; None = kernel default
    minibatch_size: int | None = None
    #: ensemble-member training processes; <= 1 trains serially in-process
    train_workers: int = 1
    #: pooled-training transport: "auto" (shared memory whenever pooled),
    #: "on", or "off" (legacy per-worker matrix broadcast) — bit-identical
    train_shm: str = "auto"
    #: when set, publish a versioned serving artifact (ensemble + normalizer
    #: + pinned margin scales) into this store after training
    artifact_root: str | None = None


def _class_key(trace) -> str:
    if trace.is_attack:
        return trace.attack_class or trace.program
    return f"benign:{trace.program}"


def _family_key(trace) -> str:
    """Attack-family label for per-family evaluation.

    Attacks group by ``attack_class`` (the generator stamps the family name
    there; the real corpus carries its capture class), benign traces by
    workload program — both survive the salvage decoder, unlike ``meta``.
    """
    if trace.is_attack:
        return trace.attack_class or trace.program
    return trace.program


def _margin_stats(margins: np.ndarray) -> dict:
    """Distribution summary of per-trace mean margins, JSON-exact floats."""
    margins = np.asarray(margins, dtype=np.float64)
    if margins.size == 0:
        return {"mean": None, "std": None, "min": None, "p25": None, "p50": None, "p75": None, "max": None}
    p25, p50, p75 = (float(v) for v in np.percentile(margins, [25.0, 50.0, 75.0]))
    return {
        "mean": float(margins.mean()),
        "std": float(margins.std()),
        "min": float(margins.min()),
        "p25": p25,
        "p50": p50,
        "p75": p75,
        "max": float(margins.max()),
    }


def per_family_metrics(
    traces, test_idx, verdicts: np.ndarray, truth: np.ndarray, trace_margins: np.ndarray
) -> dict[str, dict]:
    """Per-family accuracy / false-positive-or-miss rate / margin
    distributions over the held-out traces.

    Families come from :func:`_family_key`; benign families report
    ``false_positive_rate`` (flagged-as-attack fraction), attack families
    ``miss_rate`` (1 - recall).  ``margins`` summarizes the per-trace mean
    ensemble margin — the detector's confidence — for that family's test
    traces.
    """
    cells: dict[str, dict] = {}
    members: dict[str, list[int]] = {}
    for t in sorted(int(i) for i in test_idx):
        trace = traces[t]
        key = _family_key(trace)
        cell = cells.setdefault(
            key,
            {"kind": "attack" if trace.is_attack else "benign", "tested": 0, "correct": 0},
        )
        cell["tested"] += 1
        cell["correct"] += int(verdicts[t] == truth[t])
        members.setdefault(key, []).append(t)
    out: dict[str, dict] = {}
    for key in sorted(cells):
        cell = cells[key]
        accuracy = cell["correct"] / cell["tested"]
        error = 1.0 - accuracy
        doc = {
            "kind": cell["kind"],
            "tested": cell["tested"],
            "correct": cell["correct"],
            "accuracy": accuracy,
            "margins": _margin_stats(trace_margins[members[key]]),
        }
        if cell["kind"] == "benign":
            doc["false_positive_rate"] = error
        else:
            doc["miss_rate"] = error
        out[key] = doc
    return out


def split_traces(traces, test_frac: float, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Stratified per-class trace split; classes with a single trace stay in
    train.  Returns (train_idx, test_idx)."""
    rng = np.random.default_rng(seed)
    by_class: dict[str, list[int]] = {}
    for i, trace in enumerate(traces):
        by_class.setdefault(_class_key(trace), []).append(i)
    train, test = [], []
    for indices in by_class.values():
        indices = list(indices)
        rng.shuffle(indices)
        n_test = int(round(test_frac * len(indices))) if len(indices) > 1 else 0
        n_test = min(n_test, len(indices) - 1)
        test.extend(indices[:n_test])
        train.extend(indices[n_test:])
    return np.array(sorted(train), dtype=np.int64), np.array(sorted(test), dtype=np.int64)


def run_pipeline(config: PipelineConfig) -> dict:
    """Run train + eval once; returns the metrics document (also written to
    ``<out_dir>/metrics.json``)."""
    t_start = time.monotonic()
    out_dir = Path(config.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    # ---- ingest + assembly ----------------------------------------------
    # one call resolves the corpus through both cache tiers: a warm dataset
    # cache short-circuits decode and assembly with a single mmap load, a
    # miss walks the decode cache / salvage path and publishes the result
    assembly = assemble_corpus(
        config.trace_dir,
        pattern=config.pattern,
        workers=config.workers,
        retry_policy=config.retry_policy,
        decode_timeout_s=config.decode_timeout_s,
        faults=config.faults,
        cache_root=config.cache_dir,
        dataset_cache_root=config.dataset_cache_dir,
        quarantine_path=out_dir / "quarantine.json",
    )
    dataset = assembly.dataset
    quarantine = assembly.quarantine

    # ---- features -------------------------------------------------------
    train_idx, test_idx = split_traces(dataset.traces, config.test_frac, config.seed)
    train_mask = np.isin(dataset.groups, train_idx)
    # split_traces partitions the trace indices, so the test mask is exactly
    # the complement — skip a second sort-based isin over every sample
    test_mask = ~train_mask

    # the fitted stats depend only on (corpus, seed, test_frac), so the
    # dataset-cache entry carries them as a JSON sidecar; the round-trip is
    # bit-exact, making a sidecar hit indistinguishable from a fresh fit
    normalizer = None
    normalizer_cached = False
    if assembly.cache is not None and assembly.key is not None:
        normalizer = assembly.cache.load_normalizer(
            assembly.key,
            seed=config.seed,
            test_frac=config.test_frac,
            n_features=dataset.n_features,
        )
        normalizer_cached = normalizer is not None
    if normalizer is None:
        normalizer = Normalizer().fit(dataset.X[train_mask])
        if assembly.cache is not None and assembly.key is not None:
            assembly.cache.store_normalizer(
                assembly.key, normalizer, seed=config.seed, test_frac=config.test_frac
            )
    normalizer.save(out_dir / "normalizer.json")
    # transform is elementwise per row (per-column constants only), so
    # normalizing the full matrix once and slicing is bit-identical to
    # transforming each slice — and eval reuses X_all instead of a third pass.
    # the entry also carries the normalized matrix per split as a CRC-verified
    # .npy sidecar holding the exact float64 bytes a fresh transform produced,
    # so a fully warm run never touches log1p at all
    X_all = None
    if normalizer_cached:
        X_all = assembly.cache.load_normalized(
            assembly.key,
            seed=config.seed,
            test_frac=config.test_frac,
            shape=dataset.X.shape,
        )
    normalized_cached = X_all is not None
    if X_all is None:
        X_all = normalizer.transform(dataset.X)
        if assembly.cache is not None and assembly.key is not None:
            assembly.cache.store_normalized(
                assembly.key, X_all, seed=config.seed, test_frac=config.test_frac
            )
    t_features = time.monotonic()

    # ---- model ----------------------------------------------------------
    # carving the train/test copies out of the normalized matrix is training
    # prep, not featurization — it lands in train_s
    Xtr = X_all[train_mask]
    Xte = X_all[test_mask]
    ytr = dataset.y[train_mask]
    yte = dataset.y[test_mask]
    n_models = max(1, config.n_models)
    with span(
        logger,
        "pipeline.train",
        members=n_models,
        mode=config.fit_mode,
        kernel=config.fit_kernel,
        workers=config.train_workers,
        shm=config.train_shm,
    ) as train_span:
        members = train_ensemble(
            Xtr,
            ytr,
            n_features=dataset.n_features,
            seeds=[config.seed * 1000 + k for k in range(n_models)],
            model_kwargs={
                "n_tables": config.n_tables,
                "table_bits": config.table_bits,
                "n_bins": config.n_bins,
                "theta": config.theta,
            },
            fit_kwargs={
                "epochs": config.epochs,
                "mode": config.fit_mode,
                "kernel": config.fit_kernel,
                "minibatch_size": config.minibatch_size,
            },
            workers=config.train_workers,
            shm=config.train_shm,
        )
        for k, member in enumerate(members):
            member.model.save(out_dir / "models" / f"member_{k}.npz")
        train_span["epochs"] = [len(m.history) for m in members]
    models = [m.model for m in members]
    histories = [m.history for m in members]
    t_train = time.monotonic()

    # ---- artifact publish -----------------------------------------------
    artifact_doc = None
    if config.artifact_root is not None:
        scales = margin_scales(models, Xtr, batch_size=config.batch_size)
        published = ArtifactStore(config.artifact_root).publish(
            models,
            normalizer,
            scales,
            meta={
                "trace_dir": config.trace_dir,
                "seed": config.seed,
                "epochs": config.epochs,
                "n_models": n_models,
                "train_traces": len(train_idx),
                "train_samples": int(train_mask.sum()),
            },
        )
        artifact_doc = {
            "root": config.artifact_root,
            "version": published.version,
            "n_features": published.manifest["n_features"],
            "members": published.manifest["n_members"],
        }

    # ---- eval -----------------------------------------------------------
    margins_test = ensemble_margins(models, Xte, batch_size=config.batch_size)
    interval_acc = (
        float((np.where(margins_test > 0, 1, -1) == yte).mean()) if len(yte) else float("nan")
    )
    margins_all = ensemble_margins(models, X_all, batch_size=config.batch_size)
    verdicts = trace_verdicts(margins_all, dataset.groups, len(dataset.traces))
    truth = dataset.trace_labels()
    margin_sums = np.bincount(dataset.groups, weights=margins_all, minlength=len(dataset.traces))
    margin_counts = np.bincount(dataset.groups, minlength=len(dataset.traces))
    trace_margins = np.divide(
        margin_sums, margin_counts, out=np.zeros_like(margin_sums), where=margin_counts > 0
    )
    per_family = per_family_metrics(dataset.traces, test_idx, verdicts, truth, trace_margins)

    test_set = set(test_idx.tolist())
    per_class: dict[str, dict] = {}
    n_correct = n_eval = 0
    benign_total = benign_fp = 0
    for t in sorted(test_set):
        trace = dataset.traces[t]
        key = _class_key(trace)
        cell = per_class.setdefault(key, {"total": 0, "correct": 0})
        cell["total"] += 1
        correct = verdicts[t] == truth[t]
        cell["correct"] += int(correct)
        n_eval += 1
        n_correct += int(correct)
        if not trace.is_attack:
            benign_total += 1
            benign_fp += int(verdicts[t] == 1)
    t_eval = time.monotonic()

    attack_recall = {
        key: cell["correct"] / cell["total"]
        for key, cell in sorted(per_class.items())
        if not key.startswith("benign:")
    }
    ingest_doc = dict(assembly.ingest)
    if config.cache_dir is not None and assembly.decode_cache_hits is not None:
        hits = assembly.decode_cache_hits
        ingest_doc["cache"] = {"hits": hits, "misses": ingest_doc["loaded"] - hits}
    metrics = {
        "version": METRICS_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "elapsed_s": round(time.monotonic() - t_start, 3),
        "timings": {
            # ingest covers the key sweep + decode (cold) or entry load
            # (warm); featurize is everything from trace assembly through
            # the normalized matrix — t_ingest sits after both, so split on
            # the assembly's own ingest clock
            "ingest_s": round(assembly.ingest_s, 3),
            "featurize_s": round(t_features - t_start - assembly.ingest_s, 3),
            "train_s": round(t_train - t_features, 3),
            "train_members_s": [round(m.train_s, 3) for m in members],
            "eval_s": round(t_eval - t_train, 3),
        },
        "config": {
            "trace_dir": config.trace_dir,
            "pattern": config.pattern,
            "test_frac": config.test_frac,
            "epochs": config.epochs,
            "seed": config.seed,
            "n_tables": config.n_tables,
            "table_bits": config.table_bits,
            "n_bins": config.n_bins,
            "theta": config.theta,
            "n_models": config.n_models,
            "fit_mode": config.fit_mode,
            "fit_kernel": config.fit_kernel,
            "minibatch_size": config.minibatch_size,
            "train_workers": config.train_workers,
            "train_shm": config.train_shm,
            "dataset_cache_dir": config.dataset_cache_dir,
            "faults": vars(config.faults) if config.faults else None,
        },
        "ingest": ingest_doc,
        "dataset": {
            "traces": len(dataset.traces),
            "samples": dataset.n_samples,
            "features": dataset.n_features,
            "train_traces": len(train_idx),
            "test_traces": len(test_idx),
            "skipped_traces": len(dataset.skipped),
        },
        "training": {
            "members": len(models),
            "epochs_run": [len(h) for h in histories],
            "updates_per_epoch": histories,
        },
        "artifact": artifact_doc,
        "metrics": {
            "interval_accuracy": interval_acc,
            "trace_accuracy": (n_correct / n_eval) if n_eval else float("nan"),
            "benign_false_positive_rate": (benign_fp / benign_total) if benign_total else 0.0,
            "attack_recall": attack_recall,
            "per_class": per_class,
            "families": len(per_family),
            "per_family": per_family,
        },
    }
    if config.dataset_cache_dir is not None:
        # its own top-level section (not under "ingest") so stable-metrics
        # comparisons between cold and warm runs stay key-for-key identical
        doc = dict(assembly.dataset_cache or {"enabled": True, "hit": False})
        doc["normalizer_cached"] = normalizer_cached
        doc["normalized_cached"] = normalized_cached
        if assembly.cache is not None:
            doc["stats"] = assembly.cache.stats.to_json()
        metrics["dataset_cache"] = doc
    (out_dir / "metrics.json").write_text(json.dumps(metrics, indent=2) + "\n")
    log_event(
        logger,
        "pipeline.done",
        trace_accuracy=f"{metrics['metrics']['trace_accuracy']:.4f}",
        fpr=f"{metrics['metrics']['benign_false_positive_rate']:.4f}",
        quarantined=len(quarantine),
        out=str(out_dir),
    )
    return metrics
