"""Content-addressed cache of decoded traces.

Salvage-decoding a damaged capture costs ~150 ms; re-reading its cached,
cleanly re-encoded form costs ~1 ms.  The cache keys every entry on the
SHA-256 of the *exact bytes that were decoded* (post fault-injection, so a
corrupted read can never alias a clean one) plus the codec and cache schema
versions, which makes entries immutable: a key either maps to the one true
decode of those bytes or it does not exist.

Entry layout (one file per entry, fanned out over 256 subdirectories)::

    magic "RFC1" | u32 doc length | doc JSON | codec body

The *doc* carries the :class:`~repro.sim.trace.DecodeReport` (mode, notes,
salvage bookkeeping) and a CRC-32 of the body; the *body* is the trace
re-serialized with :func:`~repro.sim.trace.encode_trace`, so reads go
through the codec's restricted-unpickler clean path — the salvage decoder is
never needed for a warm entry.

Failure policy: the cache must never make a run worse than no cache.

- Writes are atomic (temp file + ``os.replace``) so a crashed run cannot
  leave a torn entry behind.
- Reads verify magic, CRC, and the codec decode; any mismatch counts as a
  miss, deletes the bad entry (``cache.invalid`` event), and the caller
  falls back to the real decoder.
- ``OSError`` anywhere inside the cache is swallowed (with an event): a
  read-only or full disk degrades to cache-off behavior.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from .sim.salvage import SalvageReport
from .sim.trace import TRACE_VERSION, DecodeReport, Trace, decode_trace, encode_trace
from .telemetry import get_logger, log_event

logger = get_logger("repro.cache")

#: bump when the entry layout or the doc schema changes; old entries then
#: simply never hit and age out
CACHE_VERSION = 1

_MAGIC = b"RFC1"
_DOC_LEN = struct.Struct("<I")
_MAX_DOC = 1 << 20


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0
    errors: int = 0

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
            "errors": self.errors,
        }


class FeatureCache:
    """Maps ``sha256(payload) + versions`` to a decoded ``(Trace, DecodeReport)``."""

    def __init__(self, root):
        self.root = Path(root)
        self.stats = CacheStats()

    # -- keys ------------------------------------------------------------

    def key(self, payload: bytes) -> str:
        """Content address for ``payload``: digest over the bytes and every
        version that affects what they decode to."""
        h = hashlib.sha256()
        h.update(f"repro-cache:{CACHE_VERSION}:{TRACE_VERSION}:".encode())
        h.update(payload)
        return h.hexdigest()

    def entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.trace"

    # -- read ------------------------------------------------------------

    def get(self, key: str, *, path: str = "<cache>") -> tuple[Trace, DecodeReport] | None:
        """Return the cached decode for ``key`` or None.  Corrupt entries are
        deleted and reported as a miss; the caller re-decodes and re-stores."""
        entry = self.entry_path(key)
        try:
            blob = entry.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError as exc:
            self.stats.errors += 1
            log_event(logger, "cache.error", op="read", key=key, error=type(exc).__name__)
            self.stats.misses += 1
            return None
        decoded = self._decode_entry(blob, path)
        if decoded is None:
            self._invalidate(entry, key)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        log_event(logger, "cache.hit", level=logging.DEBUG, key=key, path=path)
        return decoded

    def _decode_entry(self, blob: bytes, path: str) -> tuple[Trace, DecodeReport] | None:
        header = len(_MAGIC) + _DOC_LEN.size
        if len(blob) < header or blob[: len(_MAGIC)] != _MAGIC:
            return None
        (doc_len,) = _DOC_LEN.unpack_from(blob, len(_MAGIC))
        body_start = header + doc_len
        if doc_len > _MAX_DOC or body_start > len(blob):
            return None
        try:
            doc = json.loads(blob[header:body_start].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return None
        body = blob[body_start:]
        if not isinstance(doc, dict) or doc.get("cache_version") != CACHE_VERSION:
            return None
        if doc.get("crc32") != zlib.crc32(body):
            return None
        try:
            trace, _ = decode_trace(body, path=path)
        except Exception:
            # entry passed its CRC but the body will not decode: a schema
            # change without a CACHE_VERSION bump, or bit rot inside the CRC
            # collision space -- either way, re-decode from source
            return None
        report = self._report_from_doc(doc, path)
        return trace, report

    @staticmethod
    def _report_from_doc(doc: dict, path: str) -> DecodeReport:
        rep = doc.get("report") or {}
        report = DecodeReport(
            path=path,
            mode=str(rep.get("mode", "clean")),
            notes=[str(n) for n in rep.get("notes", [])],
        )
        salvage = rep.get("salvage")
        if isinstance(salvage, dict):
            try:
                report.salvage = SalvageReport(**salvage)
            except TypeError:
                report.notes.append("cache_salvage_report_dropped")
        return report

    # -- write -----------------------------------------------------------

    def put(self, key: str, trace: Trace, report: DecodeReport) -> bool:
        """Store a decode under ``key``.  Returns False (and logs) instead of
        raising when the entry cannot be written."""
        try:
            body = encode_trace(trace)
        except Exception as exc:  # pragma: no cover - encode of a decoded trace
            self.stats.errors += 1
            log_event(logger, "cache.error", op="encode", key=key, error=type(exc).__name__)
            return False
        rep: dict = {"mode": report.mode, "notes": list(report.notes)}
        if report.salvage is not None:
            # int()/bool(): salvage counters can be numpy scalars
            rep["salvage"] = {
                "expected_floats": int(report.salvage.expected_floats),
                "recovered_floats": int(report.salvage.recovered_floats),
                "nan_floats": int(report.salvage.nan_floats),
                "resyncs": int(report.salvage.resyncs),
                "bytes_dropped": int(report.salvage.bytes_dropped),
                "truncated": bool(report.salvage.truncated),
                "clean": bool(report.salvage.clean),
                "notes": [str(n) for n in report.salvage.notes],
            }
        doc = json.dumps(
            {"cache_version": CACHE_VERSION, "crc32": zlib.crc32(body), "report": rep},
            sort_keys=True,
        ).encode("utf-8")
        blob = _MAGIC + _DOC_LEN.pack(len(doc)) + doc + body
        entry = self.entry_path(key)
        tmp = entry.with_name(f".{entry.name}.{os.getpid()}.tmp")
        try:
            entry.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(blob)
            os.replace(tmp, entry)
        except OSError as exc:
            self.stats.errors += 1
            log_event(logger, "cache.error", op="write", key=key, error=type(exc).__name__)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self.stats.stores += 1
        log_event(logger, "cache.store", level=logging.DEBUG, key=key, bytes=len(blob))
        return True

    # -- maintenance -----------------------------------------------------

    def _invalidate(self, entry: Path, key: str) -> None:
        self.stats.invalidated += 1
        log_event(logger, "cache.invalid", key=key, entry=entry.name)
        try:
            entry.unlink(missing_ok=True)
        except OSError as exc:
            self.stats.errors += 1
            log_event(logger, "cache.error", op="unlink", key=key, error=type(exc).__name__)

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.trace"))
