"""PerSpectron reproduction: fault-tolerant trace ingestion and detection.

Layers (each importable on its own):

- :mod:`repro.sim`      -- the ``Trace`` codec for the ``.trace_cache`` format
- :mod:`repro.ingest`   -- retrying, quarantining corpus loader
- :mod:`repro.features` -- sanitization + persisted z-score normalization
- :mod:`repro.model`    -- hashed-weight perceptron detector
- :mod:`repro.pipeline` -- train/eval CLI (``python -m repro.pipeline``)
"""

from . import errors

__version__ = "0.1.0"

__all__ = ["errors", "__version__"]
