"""Trace codec layer: the ``Trace`` record and the versioned ``.trace_cache``
binary reader/writer, including best-effort salvage of damaged captures."""

from .trace import TRACE_VERSION, DecodeReport, Trace, decode_trace, encode_trace, read_trace

__all__ = [
    "TRACE_VERSION",
    "Trace",
    "DecodeReport",
    "decode_trace",
    "encode_trace",
    "read_trace",
]
