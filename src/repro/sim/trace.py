"""The ``Trace`` record and the versioned ``.trace_cache`` codec.

On-disk format (version 4): a little-endian ``u64`` version header equal to
``4`` followed by a pickle body of one :class:`Trace` instance.  Decoding is
two-tiered:

1. **clean path** -- the body is loaded with a restricted unpickler that only
   admits :class:`Trace` and the numpy array-reconstruction globals.
2. **salvage path** -- the seed corpus was captured through a UTF-8
   decode/encode round trip with ``errors="ignore"``, which silently *deleted*
   every byte that did not form valid UTF-8 (pickle opcodes ``\\x80 \\x8c
   \\x93 \\x94``..., high bytes of ints and floats).  The salvage parser walks
   the surviving landmarks (length-prefixed field names survive because they
   are ASCII), re-derives the array shape from the stat-name list, and
   re-aligns the float payload with :func:`repro.sim.salvage.salvage_f64`.

Every failure raises a :class:`~repro.errors.TraceDecodeError` subclass --
never a bare exception -- so the ingest layer can quarantine by typed reason.
"""

from __future__ import annotations

import io
import pickle
import struct
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    BadHeader,
    DecodeTimeout,
    SchemaMismatch,
    TraceDecodeError,
    TruncatedTrace,
)
from .salvage import SalvageReport, _score_alignment, salvage_f64

TRACE_VERSION = 4
_HEADER = struct.Struct("<Q")

#: mangled-body signature: SHORT_BINUNICODE markers stripped, lengths survive
_BODY_LANDMARK = b"\x0frepro.sim.trace\x05Trace"
#: how deep into the file the landmark may sit (headers lose bytes too)
_LANDMARK_WINDOW = 96

_MAX_DIM = 1_000_000
_MAX_CELLS = 64 * 1024 * 1024  # 512 MB of float64 -- decode bomb guard


# ---------------------------------------------------------------------------
# the record
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Trace:
    """One captured execution: per-interval hardware-state feature rows."""

    program: str
    label: int
    attack_class: str | None
    interval: int
    rows: np.ndarray
    stat_names: list[str] | None = None
    meta: dict = field(default_factory=dict)

    @property
    def n_intervals(self) -> int:
        return int(self.rows.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.rows.shape[1])

    @property
    def is_attack(self) -> bool:
        return self.label > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.program == other.program
            and self.label == other.label
            and self.attack_class == other.attack_class
            and self.interval == other.interval
            and self.rows.shape == other.rows.shape
            and np.array_equal(self.rows, other.rows, equal_nan=True)
            and self.stat_names == other.stat_names
            and self.meta == other.meta
        )


@dataclass
class DecodeReport:
    """How a trace was decoded and how much of it survived."""

    path: str
    mode: str = "clean"  # "clean" | "salvage"
    notes: list[str] = field(default_factory=list)
    salvage: SalvageReport | None = None

    @property
    def degraded(self) -> bool:
        return self.mode != "clean" or bool(self.notes)

    def describe(self) -> dict:
        out = {"path": self.path, "mode": self.mode, "notes": list(self.notes)}
        if self.salvage is not None:
            out["salvage"] = self.salvage.describe()
        return out


# ---------------------------------------------------------------------------
# encode + clean decode
# ---------------------------------------------------------------------------


def encode_trace(trace: Trace) -> bytes:
    """Serialize to the version-4 on-disk format."""
    rows = np.ascontiguousarray(np.asarray(trace.rows, dtype=np.float64))
    if rows.ndim != 2:
        raise SchemaMismatch(f"rows must be 2-D, got shape {rows.shape}")
    trace.rows = rows
    return _HEADER.pack(TRACE_VERSION) + pickle.dumps(trace, protocol=4)


def write_trace(path, trace: Trace) -> None:
    with open(path, "wb") as fh:
        fh.write(encode_trace(trace))


_ALLOWED_GLOBALS = {
    ("repro.sim.trace", "Trace"),
    ("numpy.core.multiarray", "_reconstruct"),
    ("numpy._core.multiarray", "_reconstruct"),
    ("numpy", "ndarray"),
    ("numpy", "dtype"),
}


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module, name):
        if (module, name) not in _ALLOWED_GLOBALS:
            raise pickle.UnpicklingError(f"global {module}.{name} is not allowed in traces")
        if name == "Trace":
            return Trace
        if name == "_reconstruct":
            from numpy._core import multiarray  # numpy >= 2; alias of numpy.core

            return multiarray._reconstruct
        return getattr(np, name)


def _validate(trace: Trace) -> Trace:
    if not isinstance(trace, Trace):
        raise SchemaMismatch(f"body decodes to {type(trace).__name__}, not Trace")
    if not isinstance(trace.program, str) or not trace.program:
        raise SchemaMismatch("program must be a non-empty string")
    if not isinstance(trace.label, int) or isinstance(trace.label, bool):
        raise SchemaMismatch(f"label must be int, got {type(trace.label).__name__}")
    if trace.attack_class is not None and not isinstance(trace.attack_class, str):
        raise SchemaMismatch("attack_class must be str or None")
    if not isinstance(trace.interval, int) or trace.interval < 0:
        raise SchemaMismatch("interval must be a non-negative int")
    rows = np.asarray(trace.rows, dtype=np.float64)
    if rows.ndim != 2:
        raise SchemaMismatch(f"rows must be 2-D, got shape {rows.shape}")
    trace.rows = rows
    if trace.stat_names is not None:
        if not all(isinstance(s, str) for s in trace.stat_names):
            raise SchemaMismatch("stat_names must be a list of strings")
        if len(trace.stat_names) != rows.shape[1]:
            raise SchemaMismatch(
                f"stat_names has {len(trace.stat_names)} entries for {rows.shape[1]} columns"
            )
    if not isinstance(trace.meta, dict):
        raise SchemaMismatch("meta must be a dict")
    return trace


# ---------------------------------------------------------------------------
# decode entry point
# ---------------------------------------------------------------------------


def decode_trace(
    data: bytes, *, path: str = "<bytes>", deadline: float | None = None
) -> tuple[Trace, DecodeReport]:
    """Decode one trace-cache blob.

    Raises a :class:`TraceDecodeError` subclass on any failure; ``deadline``
    is a ``time.monotonic()`` timestamp bounding the decode.
    """
    report = DecodeReport(path=path)
    if len(data) < _HEADER.size + 1:
        raise TruncatedTrace(f"{path}: {len(data)} bytes is shorter than the version header")
    (version,) = _HEADER.unpack_from(data)
    salvageable = data[0] == TRACE_VERSION and data.find(_BODY_LANDMARK, 0, _LANDMARK_WINDOW) >= 0

    if version == TRACE_VERSION:
        try:
            trace = _validate(_RestrictedUnpickler(io.BytesIO(data[_HEADER.size :])).load())
            return trace, report
        except TraceDecodeError:
            if not salvageable:
                raise
        except EOFError as exc:
            if not salvageable:
                raise TruncatedTrace(f"{path}: pickle body ends early: {exc}") from exc
        except Exception as exc:
            if not salvageable:
                raise SchemaMismatch(f"{path}: undecodable v4 body: {exc}") from exc
        report.notes.append("clean_decode_failed")
    elif not salvageable:
        raise BadHeader(
            f"{path}: version header is {version:#x}, expected {TRACE_VERSION} "
            "and no salvageable body signature found"
        )
    else:
        report.notes.append("mangled_header")

    report.mode = "salvage"
    trace = _salvage_decode(data, path, deadline, report)
    return _validate(trace), report


def read_trace(path, *, deadline: float | None = None) -> tuple[Trace, DecodeReport]:
    """Read and decode one trace file.  OSError propagates (retryable)."""
    with open(path, "rb") as fh:
        data = fh.read()
    return decode_trace(data, path=str(path), deadline=deadline)


# ---------------------------------------------------------------------------
# salvage parser
# ---------------------------------------------------------------------------


def _expect(data: bytes, pattern: bytes, start: int, end: int | None, what: str) -> int:
    i = data.find(pattern, start, end)
    if i >= 0:
        return i
    if end is None or end > len(data):
        raise TruncatedTrace(f"trace body ends before {what}")
    raise SchemaMismatch(f"cannot locate {what}")


def _ascii(data: bytes, start: int, length: int, what: str) -> str:
    raw = data[start : start + length]
    if len(raw) < length:
        raise TruncatedTrace(f"trace body ends inside {what}")
    if not all(0x20 <= b < 0x7F for b in raw):
        raise SchemaMismatch(f"{what} contains non-printable bytes")
    return raw.decode("ascii")


def _check_deadline(deadline: float | None, what: str) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise DecodeTimeout(f"decode exceeded its time budget during {what}")


def _parse_int_field(seg: bytes, what: str, notes: list[str], *, lenient: bool = False) -> int:
    """Parse a pickled int whose payload bytes may have been deleted.

    ``seg`` runs from the opcode byte up to the next field landmark.
    """
    if not seg:
        raise SchemaMismatch(f"{what} value is missing")
    op, payload = seg[:1], seg[1:]
    if op == b"K":  # BININT1
        if not payload:
            raise SchemaMismatch(f"{what}: BININT1 payload missing")
        return payload[0]
    if op == b"M":  # BININT2
        if len(payload) >= 2:
            return struct.unpack("<H", payload[:2])[0]
        notes.append(f"{what}_low_byte_only")
        return payload[0] if payload else 0
    if op == b"J":  # BININT (i32)
        if len(payload) >= 4:
            return struct.unpack("<i", payload[:4])[0]
        if not payload:
            # all four bytes were >= 0x80 and got deleted; the only small
            # int with that encoding is -1 (0xffffffff)
            notes.append(f"{what}_bytes_stripped_assumed_-1")
            return -1
        if lenient:
            # some payload bytes were deleted so their positions are unknown;
            # the value is unrecoverable but the field is advisory
            notes.append(f"{what}_unrecoverable")
            return 0
        raise SchemaMismatch(f"{what}: BININT payload partially stripped")
    raise SchemaMismatch(f"{what}: unrecognized int encoding {op!r}")


def _name_at(data: bytes, p: int) -> str | None:
    """Decode a length-prefixed ASCII string at ``p``, or None if the bytes
    there do not form one."""
    if p >= len(data):
        return None
    c = data[p]
    if not (1 <= c <= 0x7F):
        return None
    raw = data[p + 1 : p + 1 + c]
    if len(raw) < c or not all(0x20 <= b < 0x7F for b in raw):
        return None
    return raw.decode("ascii")


_RESYNC_WINDOW = 256


def _parse_stat_names(data: bytes, p: int, notes: list[str]) -> tuple[list[str], int]:
    """Parse the length-prefixed stat-name list; returns (names, meta_pos).

    The pickler emits a protocol-4 FRAME marker (``\\x95`` + u64 length)
    roughly every 64 KiB; after byte stripping its residue (one byte plus a
    run of zeros) lands between names, so unparseable stretches are skipped
    by resyncing to the next plausible entry.
    """
    names: list[str] = []
    while True:
        if p >= len(data):
            raise TruncatedTrace("trace body ends inside stat_names list")
        c = data[p]
        if c == 0x65:  # 'e' APPENDS -- closes a batch of up to 1000 items
            if data[p + 1 : p + 2] == b"(":  # next batch opens immediately
                p += 2
                continue
            if data[p + 1 : p + 6] == b"\x04meta":
                return names, p + 1
        name = _name_at(data, p)
        if name is None:
            limit = min(len(data), p + _RESYNC_WINDOW)
            q = p + 1
            while q < limit and _name_at(data, q) is None and not (
                data[q] == 0x65 and data[q + 1 : q + 6] == b"\x04meta"
            ):
                q += 1
            if q >= limit:
                raise SchemaMismatch(
                    f"stat_names list unparseable past entry #{len(names)}"
                )
            notes.append(f"stat_names_resync@{len(names)}")
            p = q
            continue
        names.append(name)
        p += 1 + c


_META_WIDTHS = {b"K": 1, b"M": 2, b"J": 4, b"G": 8}


def _meta_boundary(data: bytes, q: int) -> bool:
    """Does position ``q`` look like the start of the next meta key or the
    dict terminator?"""
    if q >= len(data):
        return False
    c = data[q]
    if c in (0x75, 0x62, 0x2E, 0x68):  # u SETITEMS / b BUILD / . STOP / h memo key
        return True
    if 1 <= c <= 0x40:
        raw = data[q + 1 : q + 1 + c]
        return len(raw) == c and all(0x20 <= b < 0x7F for b in raw)
    return False


def _parse_meta(data: bytes, p: int, notes: list[str]) -> dict:
    """Best-effort parse of the trailing ``meta`` dict.  Values whose bytes
    were stripped are recorded as None; structural surprises end the parse
    with a note rather than an error -- meta is advisory."""
    meta: dict = {}
    if data[p : p + 5] != b"\x04meta":
        notes.append("meta_missing")
        return meta
    p += 5
    if data[p : p + 1] != b"}":
        notes.append("meta_malformed")
        return meta
    p += 1
    if data[p : p + 1] == b"(":
        p += 1
    while p < len(data):
        c = data[p]
        if c in (0x75, 0x62, 0x2E):
            return meta
        if c == 0x68:  # memoized key: referent unknown after byte stripping
            notes.append("meta_memo_key_skipped")
            key = None
            p += 2
        elif 1 <= c <= 0x40:
            try:
                key = _ascii(data, p + 1, c, "meta key")
            except TraceDecodeError:
                notes.append("meta_parse_stopped")
                return meta
            p += 1 + c
        else:
            notes.append("meta_parse_stopped")
            return meta
        op = data[p : p + 1]
        if op == b"N":
            value: object = None
            p += 1
        elif op in _META_WIDTHS:
            width = _META_WIDTHS[op]
            survived = next(
                (k for k in range(width, -1, -1) if _meta_boundary(data, p + 1 + k)), None
            )
            if survived is None:
                notes.append("meta_parse_stopped")
                return meta
            raw = data[p + 1 : p + 1 + survived]
            if survived == width:
                if op == b"K":
                    value = raw[0]
                elif op == b"M":
                    value = struct.unpack("<H", raw)[0]
                elif op == b"J":
                    value = struct.unpack("<i", raw)[0]
                else:
                    value = struct.unpack(">d", raw)[0]
            else:
                value = None
                notes.append("meta_value_degraded")
            p += 1 + survived
        else:
            notes.append("meta_parse_stopped")
            return meta
        if key is not None:
            meta[key] = value
    notes.append("meta_unterminated")
    return meta


def _salvage_decode(
    data: bytes, path: str, deadline: float | None, report: DecodeReport
) -> Trace:
    notes = report.notes
    _check_deadline(deadline, "salvage header scan")

    # --- scalar fields, located by their ASCII key landmarks -------------
    pi = _expect(data, b"\x07program", 0, _LANDMARK_WINDOW + 64, "program field")
    if pi + 9 > len(data):
        raise TruncatedTrace("trace body ends inside program field")
    program = _ascii(data, pi + 9, data[pi + 8], "program name")
    cursor = pi + 9 + data[pi + 8]

    li = _expect(data, b"\x05label", cursor, cursor + 64, "label field")
    ai = _expect(data, b"\x0cattack_class", li, li + 96, "attack_class field")
    label = _parse_int_field(data[li + 6 : ai], "label", notes)

    ii = _expect(data, b"\x08interval", ai, ai + 96, "interval field")
    seg = data[ai + 13 : ii]
    if not seg:
        raise SchemaMismatch("attack_class value is missing")
    if seg[:1] == b"N":
        attack_class: str | None = None
    elif seg[:1] in (b"h", b"j"):
        # memo reference; the only string memoized before this point is the
        # program name
        attack_class = program
    else:
        attack_class = _ascii(data, ai + 14, seg[0], "attack_class")

    ri = _expect(data, b"\x04rows", ii + 9, ii + 9 + 64, "rows field")
    interval = _parse_int_field(data[ii + 9 : ri], "interval", notes, lenient=True)

    # --- array header ----------------------------------------------------
    ni = _expect(data, b"\x07ndarray", ri, ri + 96, "ndarray constructor")
    si = _expect(data, b"R(K\x01", ni, ni + 64, "array state")
    di = _expect(data, b"\x05dtype", si + 4, si + 4 + 48, "array dtype")
    shape_seg = data[si + 4 : di]
    if shape_seg[-2:-1] == b"h":  # trailing BINGET of the memoized "numpy"
        shape_seg = shape_seg[:-2]
    if shape_seg[:1] != b"K" or len(shape_seg) < 2:
        raise SchemaMismatch(f"unrecognized array shape encoding {shape_seg!r}")
    n_intervals = shape_seg[1]
    n_features: int | None = None
    dim2 = shape_seg[2:]
    if dim2[:1] == b"M" and len(dim2) >= 3:
        n_features = struct.unpack("<H", dim2[1:3])[0]
    elif dim2[:1] == b"K" and len(dim2) >= 2:
        n_features = dim2[1]
    # else: the BININT2 payload lost a byte; recovered from stat_names below

    ti = _expect(data, b"NNNJJK\x00tb", di, di + 96, "dtype state")
    bpos = ti + 9
    if data[bpos : bpos + 1] != b"B":
        raise SchemaMismatch("rows payload opcode missing")

    end_i = _expect(data, b"tb\nstat_names](", bpos, None, "stat_names section")
    stat_names, meta_pos = _parse_stat_names(data, end_i + 15, notes)
    meta = _parse_meta(data, meta_pos, notes)

    if stat_names:
        if n_features is not None and n_features != len(stat_names):
            raise SchemaMismatch(
                f"shape says {n_features} features but {len(stat_names)} stat names"
            )
        n_features = len(stat_names)
    if n_features is None:
        raise SchemaMismatch("feature count unrecoverable (shape stripped, no stat names)")
    if not (1 <= n_intervals <= _MAX_DIM and 1 <= n_features <= _MAX_DIM):
        raise SchemaMismatch(f"implausible array shape ({n_intervals}, {n_features})")
    count = n_intervals * n_features
    if count > _MAX_CELLS:
        raise SchemaMismatch(f"array of {count} cells exceeds the decode-bomb guard")

    # --- float payload ---------------------------------------------------
    # Up to 4 declared-length bytes survive after 'B'; prefer an exact match
    # against the expected byte count, otherwise pick the start offset whose
    # leading floats score as most plausible.
    start = None
    if len(data) >= bpos + 5 and struct.unpack("<I", data[bpos + 1 : bpos + 5])[0] == count * 8:
        start = bpos + 5
    else:
        notes.append("payload_length_field_degraded")
        best_score = -1
        for k in range(5):
            cand = bpos + 1 + k
            if cand > end_i:
                break
            score = _score_alignment(data[cand:end_i], 0)
            if score > best_score:
                best_score, start = score, cand
    if start is None:
        raise TruncatedTrace("rows payload is empty")

    _check_deadline(deadline, "payload salvage")
    values, srep = salvage_f64(data[start:end_i], count, deadline=deadline)
    report.salvage = srep
    if srep.nan_fraction > 0.5:
        notes.append("payload_mostly_unrecoverable")

    return Trace(
        program=program,
        label=label,
        attack_class=attack_class,
        interval=interval,
        rows=values.reshape(n_intervals, n_features),
        stat_names=stat_names or None,
        meta=meta,
    )
