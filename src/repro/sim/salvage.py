"""Best-effort recovery of float64 payloads from lossy byte streams.

The seed trace corpus was captured by a tool that passed every file through
a UTF-8 decode/encode round trip with ``errors="ignore"``.  Pure-ASCII bytes
(< 0x80) survived, bytes that happened to form valid UTF-8 sequences
survived, and every other byte was silently *deleted*.  For the pickled
float64 matrices this means a small percentage of bytes are simply missing,
which shifts the alignment of everything that follows.

:func:`salvage_f64` re-aligns such a stream greedily: it decodes 8-byte
chunks while they look like plausible hardware-counter values, and on the
first implausible chunk it searches a small window of "bytes dropped here" /
"frame header inserted here" hypotheses, scoring each by how many of the
following floats become plausible again.  Unrecoverable values are emitted
as NaN so the feature layer can impute them; they are never invented.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import DecodeTimeout

# Plausibility envelope for gem5-style counter values.  Anything outside is
# assumed to be a misaligned decode.  Zero is by far the most common value.
_ABS_MIN = 1e-12
_ABS_MAX = 1e15

#: candidate resync hypotheses, in preference order:
#:  +d  -> d bytes were dropped inside the current float (value lost)
#:  -8  -> an 8-byte pickle frame header was inserted into the stream
_SHIFTS = (1, 2, 3, 4, 5, 6, 7, -8, 8, 9, 10, 11, 12)
_LOOKAHEAD = 6


@dataclass
class SalvageReport:
    """Bookkeeping for one salvaged payload."""

    expected_floats: int = 0
    recovered_floats: int = 0
    nan_floats: int = 0
    resyncs: int = 0
    bytes_dropped: int = 0
    truncated: bool = False
    clean: bool = True
    notes: list[str] = field(default_factory=list)

    @property
    def nan_fraction(self) -> float:
        if self.expected_floats == 0:
            return 0.0
        return self.nan_floats / self.expected_floats

    def describe(self) -> dict:
        return {
            "expected_floats": self.expected_floats,
            "recovered_floats": self.recovered_floats,
            "nan_floats": self.nan_floats,
            "nan_fraction": round(self.nan_fraction, 6),
            "resyncs": self.resyncs,
            "bytes_dropped": self.bytes_dropped,
            "truncated": self.truncated,
            "clean": self.clean,
        }


def _plausible(values: np.ndarray) -> np.ndarray:
    a = np.abs(values)
    return np.isfinite(values) & ((values == 0.0) | ((a >= _ABS_MIN) & (a <= _ABS_MAX)))


def _decode_at(buf: bytes, pos: int, count: int) -> np.ndarray:
    if pos < 0 or pos >= len(buf):
        return np.empty(0, dtype=np.float64)
    avail = (len(buf) - pos) // 8
    n = min(count, max(avail, 0))
    if n <= 0:
        return np.empty(0, dtype=np.float64)
    return np.frombuffer(buf, dtype="<f8", count=n, offset=pos)


def _score_alignment(buf: bytes, pos: int) -> int:
    """How many of the next ``_LOOKAHEAD`` floats at ``pos`` look sane."""
    chunk = _decode_at(buf, pos, _LOOKAHEAD)
    if chunk.size == 0:
        return 0
    return int(_plausible(chunk).sum())


def salvage_f64(
    buf: bytes,
    count: int,
    *,
    deadline: float | None = None,
) -> tuple[np.ndarray, SalvageReport]:
    """Decode up to ``count`` little-endian float64 values from ``buf``.

    Returns the values (exactly ``count`` long, NaN-padded) together with a
    :class:`SalvageReport`.  Never raises on corrupt input; only
    :class:`~repro.errors.DecodeTimeout` can escape, when ``deadline`` (a
    ``time.monotonic()`` timestamp) is exceeded.
    """
    report = SalvageReport(expected_floats=count)
    out = np.full(count, np.nan, dtype=np.float64)
    pos = 0
    emitted = 0

    while emitted < count:
        if deadline is not None and time.monotonic() > deadline:
            raise DecodeTimeout(
                f"salvage exceeded deadline after {emitted}/{count} floats"
            )
        chunk = _decode_at(buf, pos, count - emitted)
        if chunk.size == 0:
            break
        ok = _plausible(chunk)
        bad = np.argmin(ok) if not ok.all() else chunk.size
        if bad > 0:
            out[emitted : emitted + bad] = chunk[:bad]
            emitted += bad
            pos += 8 * bad
        if ok.all():
            if emitted >= count:
                break
            # plausible prefix consumed the whole buffer
            pos = len(buf)
            break

        # chunk[bad] is implausible: the current float is damaged.  Search
        # resync hypotheses; the damaged float itself is unrecoverable.
        report.clean = False
        report.resyncs += 1
        best_shift, best_score = None, -1
        base_score = _score_alignment(buf, pos + 8)
        for shift in _SHIFTS:
            nxt = pos + 8 - shift if shift > 0 else pos + 8 + (-shift)
            if nxt > len(buf):
                continue
            score = _score_alignment(buf, nxt)
            if score > best_score:
                best_shift, best_score = shift, score
        if best_shift is None or best_score <= base_score:
            # no hypothesis beats "just a weird value in place": skip one
            # float, keep alignment.
            out[emitted] = np.nan
            report.nan_floats += 1
            emitted += 1
            pos += 8
            continue
        out[emitted] = np.nan
        report.nan_floats += 1
        emitted += 1
        if best_shift > 0:
            report.bytes_dropped += best_shift
            pos += 8 - best_shift
        else:
            report.notes.append(f"inserted_bytes@{pos}")
            pos += 8 + (-best_shift)

    if emitted < count:
        missing = count - emitted
        report.nan_floats += missing
        report.truncated = True
        report.clean = False
        report.notes.append(f"short_payload:{missing}_floats_missing")
    report.recovered_floats = count - report.nan_floats
    return out, report
