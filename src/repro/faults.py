"""Fault injection for robustness testing.

A :class:`FaultInjector` is threaded through the ingest layer and can

- raise :class:`~repro.errors.InjectedIOError` from the byte reader
  (transient by default, so the retry layer gets exercised), and
- corrupt the bytes a reader returned (flips, truncation, byte deletion,
  header smashing) so the codec's typed-error paths get exercised.

All decisions are deterministic in ``(seed, path, attempt)`` so failing runs
replay exactly.  Enable via the pipeline ``--faults`` flag or the
``REPRO_FAULTS`` environment variable, e.g. ``REPRO_FAULTS="io=0.2,corrupt=0.25,seed=7"``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from .errors import InjectedIOError

ENV_VAR = "REPRO_FAULTS"

#: corruption modes the injector picks between (uniformly)
_CORRUPT_MODES = ("flip", "truncate", "drop", "header")


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities for each fault site, all in ``[0, 1]``."""

    io_rate: float = 0.0
    corrupt_rate: float = 0.0
    seed: int = 0
    #: if True an injected I/O error is re-rolled every attempt, so retries
    #: usually recover; if False a chosen path fails every attempt.
    transient: bool = True

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"io=0.2,corrupt=0.25,seed=7,persistent"`` style specs."""
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if part == "persistent":
                kwargs["transient"] = False
                continue
            if part == "transient":
                kwargs["transient"] = True
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            if key in ("io", "io_rate"):
                kwargs["io_rate"] = float(value)
            elif key in ("corrupt", "corrupt_rate"):
                kwargs["corrupt_rate"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(f"unknown fault spec field: {key!r}")
        return cls(**kwargs)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        spec = os.environ.get(ENV_VAR, "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    @property
    def active(self) -> bool:
        return self.io_rate > 0 or self.corrupt_rate > 0


class FaultInjector:
    """Stateless decision maker; all randomness is derived per call."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan

    def _rng(self, path: str, salt: str) -> random.Random:
        return random.Random(f"{self.plan.seed}:{salt}:{path}")

    def maybe_io_error(self, path: str, attempt: int) -> None:
        """Raise an injected transient I/O error for this (path, attempt)."""
        if self.plan.io_rate <= 0:
            return
        salt = f"io:{attempt}" if self.plan.transient else "io"
        if self._rng(path, salt).random() < self.plan.io_rate:
            raise InjectedIOError(f"injected I/O failure (attempt {attempt}) reading {path}")

    def will_corrupt(self, path: str) -> bool:
        if self.plan.corrupt_rate <= 0:
            return False
        return self._rng(path, "corrupt?").random() < self.plan.corrupt_rate

    def corrupt(self, data: bytes, path: str) -> bytes:
        """Damage ``data`` in one of several ways; no-op if the per-path roll
        says this file stays clean."""
        if not self.will_corrupt(path):
            return data
        rng = self._rng(path, "corrupt-how")
        mode = rng.choice(_CORRUPT_MODES)
        buf = bytearray(data)
        if mode == "header" or len(buf) < 16:
            for i in range(min(8, len(buf))):
                buf[i] = rng.randrange(256)
        elif mode == "flip":
            for _ in range(rng.randint(1, 64)):
                buf[rng.randrange(len(buf))] ^= 1 << rng.randrange(8)
        elif mode == "truncate":
            buf = buf[: rng.randrange(len(buf))]
        elif mode == "drop":
            # delete a handful of byte ranges (mimics the seed capture damage)
            for _ in range(rng.randint(1, 8)):
                if len(buf) < 2:
                    break
                start = rng.randrange(len(buf) - 1)
                del buf[start : start + rng.randint(1, 16)]
        return bytes(buf)
