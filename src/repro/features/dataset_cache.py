"""Memory-mapped columnar dataset cache: the second cache tier.

The per-trace decode cache (:mod:`repro.cache`) makes re-*decoding* a corpus
cheap, but a warm run still pays ~1.6 ms of Python per trace: one file read
per ``.pkl``, one restricted-unpickle per cache entry, and a trace-by-trace
``build_dataset`` loop.  At 100k traces that is minutes of ingest+featurize
before a single weight updates.  This module caches the *assembled* artifact
instead: after one cold assembly, the full :class:`~repro.features.Dataset`
— ``X``, ``y``, ``groups``, per-trace metadata, the skip list, the
quarantine manifest, and the ingest summary — is persisted as ``.npy``
shards plus a JSON manifest, and warm runs ``np.load(..., mmap_mode="r")``
the matrix back in milliseconds.

Key composition (:meth:`DatasetCache.corpus_key`): a sha256 over

- the dataset-cache, decode-cache, and trace-codec schema versions,
- the per-file decode timeout (a ``DecodeTimeout`` quarantine depends on it),
- the fault-injection plan, retry budget, and the corpus path *as passed*
  when faults are active (fault decisions key on the path string, and the
  quarantine set depends on how many retries a flaky path gets), and
- every corpus file's relative path + sha256 of its exact on-disk bytes,
  sorted by path — unreadable files contribute a poison token instead of a
  digest, so a corpus with a vanishing file can never alias a healthy one.

Any byte change anywhere — a flipped payload byte, an added/removed/renamed
file, a codec or cache schema bump, a different fault plan — therefore
misses cleanly and falls back to cold assembly.  The sweep itself never
decodes or unpickles anything: it is a stat+hash walk, and like git's index
it memoizes ``(size, mtime_ns) -> sha256`` per corpus so a warm sweep is
pure stats — a file is only re-hashed when its stat signature moved.  The
memo is an accelerator, not an authority: it never changes *what* the key
covers, only whether a hash must be recomputed, and a torn or deleted memo
just means one slower sweep.

Entry layout (one directory per key, fanned out over 256 subdirectories)::

    <root>/sweeps/<dir-tag>.tsv           # stat-validated hash memos per
                                          # corpus directory (git-index style)
    <root>/<key[:2]>/<key>/
        MANIFEST.json                     # schema versions, per-shard CRC32/
                                          # size/shape/dtype, per-trace meta,
                                          # skip list, quarantine, ingest doc
        X.npy  y.npy  groups.npy          # the columnar shards
        normalizer_seed<k>_frac<f>.json   # fitted Normalizer stats per split
        normalized_seed<k>_frac<f>.npy    # the normalized matrix for that
        normalized_seed<k>_frac<f>.json   # split (+ CRC32/shape meta), so a
                                          # warm run skips the transform too

Failure policy — identical to the decode cache: the tier must never make a
run worse than no cache.  Entries are published by staging into a temp
directory and atomically renaming it into place; reads verify schema
versions, shard sizes, CRC-32s, shapes, and dtypes, and any mismatch deletes
the entry (``dataset_cache.invalid`` event) and falls back to cold assembly;
``OSError`` anywhere degrades to cache-off behavior with an event.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import stat as stat_mod
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..cache import CACHE_VERSION
from ..errors import IngestError
from ..faults import FaultPlan
from ..ingest import load_corpus_pooled
from ..ingest.quarantine import QuarantineManifest
from ..ingest.retry import RetryPolicy
from ..sim.trace import TRACE_VERSION
from ..telemetry import get_logger, log_event
from .assemble import Dataset, build_dataset
from .normalize import Normalizer

logger = get_logger("repro.features.dataset_cache")

#: bump when the entry layout, manifest schema, or key recipe changes; old
#: entries then simply never hit and age out
DATASET_CACHE_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"

#: the columnar shards every entry carries, with their expected dtypes
_SHARDS = (("X.npy", "float64"), ("y.npy", "int64"), ("groups.npy", "int64"))

_HASH_CHUNK = 4 * 1024 * 1024


@dataclass
class DatasetCacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0
    errors: int = 0

    def to_json(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
            "errors": self.errors,
        }


@dataclass(frozen=True)
class CorpusKey:
    """Digest of everything that can change what a corpus assembles to."""

    digest: str
    files: int
    bytes: int
    #: relpath -> sha256 hex of on-disk bytes ("" for unreadable files);
    #: carried so a store can stamp per-trace payload hashes without
    #: re-reading the corpus
    file_digests: dict[str, str] = field(default_factory=dict, hash=False, compare=False)


@dataclass(slots=True)
class TraceMeta:
    """The slice of a :class:`~repro.sim.trace.Trace` the pipeline's split
    and per-family evaluation actually read, rehydrated from the manifest.
    ``slots`` because warm loads build one per trace — 100k of these."""

    program: str
    label: int
    attack_class: str | None
    interval: int
    n_intervals: int
    payload_sha256: str = ""

    @property
    def is_attack(self) -> bool:
        return self.label > 0


@dataclass
class CachedDataset:
    """What a warm dataset-cache hit rehydrates."""

    dataset: Dataset
    quarantine: QuarantineManifest
    ingest: dict


def _file_digest(path: Path) -> tuple[str, str, int]:
    """Worker task for the key sweep: (relpath placeholder, sha256 | poison,
    size).  Never raises: an unreadable file poisons the key instead."""
    try:
        with open(path, "rb") as fh:
            data = fh.read(_HASH_CHUNK)
            if len(data) < _HASH_CHUNK:  # one-shot for small traces
                return str(path), hashlib.sha256(data).hexdigest(), len(data)
            h = hashlib.sha256(data)
            size = len(data)
            while True:
                chunk = fh.read(_HASH_CHUNK)
                if not chunk:
                    break
                h.update(chunk)
                size += len(chunk)
    except OSError as exc:
        return str(path), f"!unreadable:{type(exc).__name__}", 0
    return str(path), h.hexdigest(), size


def _scan_corpus(root: Path, pattern: str) -> list[tuple[str, str, os.stat_result | None]]:
    """Walk the corpus once, returning ``(abs_path, relpath, stat | None)``
    for every entry the ingest glob would visit.  The default pattern gets a
    scandir walk (one readdir per directory, stats reused for the memo);
    anything else falls back to :meth:`Path.glob`."""
    entries: list[tuple[str, str, os.stat_result | None]] = []
    if pattern == "**/*.pkl":
        root_str = str(root)
        # every walked path is prefix + relpath, so relpaths are a slice —
        # os.path.relpath would cost ~5 µs/file of normpath work
        prefix = root_str.rstrip(os.sep) + os.sep
        cut = len(prefix)
        stack = [root_str]
        append = entries.append
        while stack:
            try:
                it = os.scandir(stack.pop())
            except OSError:
                continue
            with it:
                for e in it:
                    try:
                        is_dir = e.is_dir(follow_symlinks=False)
                    except OSError:
                        is_dir = False
                    if is_dir:
                        stack.append(e.path)
                    if e.name.endswith(".pkl"):
                        try:
                            st = e.stat()
                        except OSError:
                            st = None
                        path = e.path
                        rel = (
                            path[cut:]
                            if path.startswith(prefix)
                            else os.path.relpath(path, root_str)
                        )
                        append((path, rel, st))
        return entries
    for p in sorted(root.glob(pattern)):
        try:
            st = p.stat()
        except OSError:
            st = None
        entries.append((str(p), str(p.relative_to(root)), st))
    return entries


def _crc32_file(path: Path) -> int:
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_HASH_CHUNK)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc


def _fault_stamp(
    trace_dir, faults: FaultPlan | None, retry_policy: RetryPolicy | None
) -> str:
    """Key fragment for fault injection.  Inactive plans stamp a constant so
    moving a clean corpus between directories still hits; active plans pin
    the plan, the retry budget, and the corpus path the fault RNG keys on."""
    if faults is None or not faults.active:
        return "faults=none"
    policy = retry_policy or RetryPolicy()
    return (
        f"faults=io:{faults.io_rate!r},corrupt:{faults.corrupt_rate!r},"
        f"seed:{faults.seed},transient:{faults.transient},"
        f"attempts:{policy.attempts},dir:{trace_dir}"
    )


class DatasetCache:
    """Maps a corpus digest to a memory-mapped assembled dataset."""

    def __init__(self, root):
        self.root = Path(root)
        self.stats = DatasetCacheStats()

    # -- keys ------------------------------------------------------------

    def _sweep_memo_path(self, trace_dir) -> Path:
        tag = hashlib.sha256(str(Path(trace_dir).resolve()).encode()).hexdigest()[:16]
        return self.root / "sweeps" / f"{tag}.tsv"

    def _load_sweep_memo(
        self, trace_dir
    ) -> tuple[dict[str, tuple[int, int, str]], tuple[str, str] | None]:
        """``(relpath -> (size, mtime_ns, sha256), cached)`` where ``cached``
        is the memo's own ``(key-params sha, corpus digest)`` header if one
        was recorded.  A missing, torn, or garbled memo degrades to an empty
        one (every file re-hashes); it can never change what a key covers."""
        try:
            raw = self._sweep_memo_path(trace_dir).read_text()
        except OSError:
            return {}, None
        memo: dict[str, tuple[int, int, str]] = {}
        cached: tuple[str, str] | None = None
        for line in raw.splitlines():
            parts = line.split("\x00")
            if (
                parts[0] == "#1"
                and len(parts) == 3
                and len(parts[1]) == 64
                and len(parts[2]) == 64
            ):
                cached = (parts[1], parts[2])
                continue
            if len(parts) != 4 or len(parts[3]) != 64:
                continue
            try:
                memo[parts[0]] = (int(parts[1]), int(parts[2]), parts[3])
            except ValueError:
                continue
        return memo, cached

    def _store_sweep_memo(
        self,
        trace_dir,
        memo: dict[str, tuple[int, int, str]],
        cached: tuple[str, str] | None = None,
    ) -> None:
        path = self._sweep_memo_path(trace_dir)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        header = f"#1\x00{cached[0]}\x00{cached[1]}\n" if cached is not None else ""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                header
                + "".join(
                    f"{rel}\x00{size}\x00{mtime}\x00{sha}\n"
                    for rel, (size, mtime, sha) in sorted(memo.items())
                )
            )
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def corpus_key(
        self,
        trace_dir,
        *,
        pattern: str = "**/*.pkl",
        faults: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        decode_timeout_s: float = 30.0,
        workers: int = 1,
    ) -> CorpusKey:
        """Digest the corpus without decoding it: a stat+hash sweep over
        every file the ingest walk would visit.  Files whose ``(size,
        mtime_ns)`` matches the per-corpus memo reuse the memoized sha256;
        only changed files are re-hashed (serially at ``workers <= 1``, via
        a thread pool otherwise).  When every file stat-matches and the memo
        was written under the same key parameters, the memo's own corpus
        digest is reused outright — the fully-warm sweep is one scandir walk
        plus one stat per file."""
        header = (
            f"repro-dataset-cache:{DATASET_CACHE_VERSION}:{CACHE_VERSION}:"
            f"{TRACE_VERSION}:timeout={decode_timeout_s!r}:"
            f"{_fault_stamp(trace_dir, faults, retry_policy)}\n"
        )
        header_sha = hashlib.sha256(header.encode()).hexdigest()
        root = Path(trace_dir)
        scanned = _scan_corpus(root, pattern)
        memo, cached = self._load_sweep_memo(root)
        fresh: dict[str, tuple[int, int, str]] = {}
        digests: dict[str, str] = {}
        total = 0
        to_hash: list[tuple[str, str, os.stat_result | None]] = []
        for path_str, rel, st in scanned:
            if st is not None and stat_mod.S_ISREG(st.st_mode):
                hit = memo.get(rel)
                if hit is not None and hit[0] == st.st_size and hit[1] == st.st_mtime_ns:
                    digests[rel] = hit[2]
                    fresh[rel] = hit
                    total += st.st_size
                    continue
            to_hash.append((path_str, rel, st))
        if (
            not to_hash
            and len(fresh) == len(memo)
            and cached is not None
            and cached[0] == header_sha
        ):
            return CorpusKey(
                digest=cached[1], files=len(scanned), bytes=total, file_digests=digests
            )
        if to_hash:
            if workers > 1 and len(to_hash) > 1:
                n_threads = min(32, max(2, workers * 4))
                with ThreadPoolExecutor(max_workers=n_threads) as pool:
                    hashed = list(pool.map(_file_digest, (p for p, _, _ in to_hash)))
            else:
                hashed = [_file_digest(p) for p, _, _ in to_hash]
            for (_, rel, st), (_, digest, size) in zip(to_hash, hashed):
                digests[rel] = digest
                total += size
                if (
                    st is not None
                    and stat_mod.S_ISREG(st.st_mode)
                    and not digest.startswith("!")
                ):
                    fresh[rel] = (st.st_size, st.st_mtime_ns, digest)
        h = hashlib.sha256()
        h.update(header.encode())
        for relpath in sorted(digests):
            h.update(f"{relpath}\x00{digests[relpath]}\n".encode())
        key_digest = h.hexdigest()
        # the memoized corpus digest only covers memoizable content: every
        # scanned file regular and hashed (no poison tokens, nothing skipped)
        memoizable = len(fresh) == len(scanned)
        if fresh != memo or cached != (header_sha, key_digest):
            self._store_sweep_memo(
                root, fresh, (header_sha, key_digest) if memoizable else None
            )
        return CorpusKey(
            digest=key_digest, files=len(scanned), bytes=total, file_digests=digests
        )

    def entry_dir(self, digest: str) -> Path:
        return self.root / digest[:2] / digest

    # -- read ------------------------------------------------------------

    def load(self, key: CorpusKey) -> CachedDataset | None:
        """Rehydrate the cached assembly for ``key`` or None.  Any torn,
        truncated, or stale entry is deleted and reported as a miss; the
        caller falls back to cold assembly."""
        entry = self.entry_dir(key.digest)
        manifest_path = entry / MANIFEST_NAME
        try:
            raw = manifest_path.read_text()
        except FileNotFoundError:
            self.stats.misses += 1
            log_event(
                logger, "dataset_cache.miss", level=logging.DEBUG, key=key.digest[:12]
            )
            return None
        except OSError as exc:
            self.stats.errors += 1
            self.stats.misses += 1
            log_event(
                logger,
                "dataset_cache.error",
                op="read",
                key=key.digest[:12],
                error=type(exc).__name__,
            )
            return None
        try:
            loaded = self._load_verified(entry, key, raw)
        except OSError as exc:
            self.stats.errors += 1
            self.stats.misses += 1
            log_event(
                logger,
                "dataset_cache.error",
                op="load",
                key=key.digest[:12],
                error=type(exc).__name__,
            )
            return None
        if loaded is None:
            self._invalidate(entry, key.digest)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        log_event(
            logger,
            "dataset_cache.hit",
            key=key.digest[:12],
            traces=len(loaded.dataset.traces),
            samples=loaded.dataset.n_samples,
        )
        return loaded

    def _load_verified(
        self, entry: Path, key: CorpusKey, raw: str
    ) -> CachedDataset | None:
        """Parse + verify one entry; None means invalid (caller deletes)."""
        try:
            doc = json.loads(raw)
        except ValueError:
            log_event(logger, "dataset_cache.torn_manifest", key=key.digest[:12])
            return None
        if not isinstance(doc, dict):
            return None
        if (
            doc.get("dataset_cache_version") != DATASET_CACHE_VERSION
            or doc.get("cache_version") != CACHE_VERSION
            or doc.get("trace_version") != TRACE_VERSION
            or doc.get("key") != key.digest
        ):
            return None
        shards = doc.get("shards")
        if not isinstance(shards, dict):
            return None
        arrays: dict[str, np.ndarray] = {}
        for name, dtype in _SHARDS:
            meta = shards.get(name)
            if not isinstance(meta, dict):
                return None
            path = entry / name
            try:
                size = path.stat().st_size
            except FileNotFoundError:
                return None
            if size != meta.get("bytes") or _crc32_file(path) != meta.get("crc32"):
                return None
            arr = np.load(path, mmap_mode="r", allow_pickle=False)
            if list(arr.shape) != meta.get("shape") or str(arr.dtype) != dtype:
                return None
            arrays[name] = arr
        try:
            traces = [
                TraceMeta(
                    program=str(t[0]),
                    label=int(t[1]),
                    attack_class=None if t[2] is None else str(t[2]),
                    interval=int(t[3]),
                    n_intervals=int(t[4]),
                    payload_sha256=str(t[5]),
                )
                for t in doc["traces"]
            ]
            skipped = [(str(p), str(r)) for p, r in doc["skipped"]]
            ingest = dict(doc["ingest"])
            qdoc = doc["quarantine"]
            quarantine = QuarantineManifest(root=str(qdoc.get("root", "")))
            for raw_entry in qdoc.get("entries", []):
                quarantine.add_described(raw_entry["path"], dict(raw_entry["desc"]))
        except (KeyError, IndexError, TypeError, ValueError):
            return None
        X = arrays["X.npy"]
        if X.ndim != 2 or len(traces) == 0:
            return None
        if arrays["y.npy"].shape != (X.shape[0],) or arrays["groups.npy"].shape != (
            X.shape[0],
        ):
            return None
        dataset = Dataset(
            X=X,
            y=arrays["y.npy"],
            groups=arrays["groups.npy"],
            traces=traces,
            skipped=skipped,
        )
        return CachedDataset(dataset=dataset, quarantine=quarantine, ingest=ingest)

    # -- write -----------------------------------------------------------

    def store(
        self,
        key: CorpusKey,
        dataset: Dataset,
        *,
        quarantine: QuarantineManifest,
        ingest: dict,
        trace_paths: list[str] | None = None,
        trace_dir=None,
    ) -> bool:
        """Persist a cold assembly under ``key``.  Returns False (and logs)
        instead of raising when the entry cannot be written.

        ``trace_paths`` maps each *input* trace index (``dataset.
        source_indices`` values) to its source file path so per-trace payload
        hashes can be stamped from the key sweep without re-reading files.
        """
        entry = self.entry_dir(key.digest)
        tmp = self.root / f".tmp-{key.digest[:16]}-{os.getpid()}"
        try:
            if entry.is_dir():
                return False  # someone already published this key
            shutil.rmtree(tmp, ignore_errors=True)
            tmp.mkdir(parents=True)
            shards: dict[str, dict] = {}
            for name, arr in (
                ("X.npy", np.ascontiguousarray(dataset.X, dtype=np.float64)),
                ("y.npy", np.ascontiguousarray(dataset.y, dtype=np.int64)),
                ("groups.npy", np.ascontiguousarray(dataset.groups, dtype=np.int64)),
            ):
                path = tmp / name
                np.save(path, arr, allow_pickle=False)
                shards[name] = {
                    "bytes": path.stat().st_size,
                    "crc32": _crc32_file(path),
                    "shape": list(arr.shape),
                    "dtype": str(arr.dtype),
                }
            doc = {
                "dataset_cache_version": DATASET_CACHE_VERSION,
                "cache_version": CACHE_VERSION,
                "trace_version": TRACE_VERSION,
                "key": key.digest,
                "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                "corpus": {"files": key.files, "bytes": key.bytes},
                "shards": shards,
                "traces": self._trace_docs(dataset, key, trace_paths, trace_dir),
                "skipped": [list(pair) for pair in dataset.skipped],
                "quarantine": {
                    "root": quarantine.root,
                    "entries": [
                        {
                            "path": e.path,
                            "desc": {
                                "code": e.code,
                                "type": e.error,
                                "message": e.message,
                                **e.detail,
                            },
                        }
                        for e in quarantine.entries
                    ],
                },
                "ingest": {k: v for k, v in ingest.items() if k != "cache"},
                "families": self._family_counts(dataset),
                "gen": self._gen_provenance(trace_dir),
            }
            (tmp / MANIFEST_NAME).write_text(
                json.dumps(doc, separators=(",", ":"), sort_keys=True) + "\n"
            )
            entry.parent.mkdir(parents=True, exist_ok=True)
            os.replace(tmp, entry)
        except OSError as exc:
            self.stats.errors += 1
            log_event(
                logger,
                "dataset_cache.error",
                op="write",
                key=key.digest[:12],
                error=type(exc).__name__,
            )
            shutil.rmtree(tmp, ignore_errors=True)
            return False
        self.stats.stores += 1
        log_event(
            logger,
            "dataset_cache.store",
            key=key.digest[:12],
            traces=len(dataset.traces),
            samples=dataset.n_samples,
            bytes=sum(s["bytes"] for s in shards.values()),
        )
        return True

    @staticmethod
    def _trace_docs(
        dataset: Dataset, key: CorpusKey, trace_paths: list[str] | None, trace_dir
    ) -> list[list]:
        """Compact per-trace rows: [program, label, attack_class, interval,
        n_intervals, payload_sha256]."""
        shas: list[str] = [""] * len(dataset.traces)
        if trace_paths is not None and dataset.source_indices is not None and trace_dir:
            root = Path(trace_dir)
            for k, src in enumerate(dataset.source_indices.tolist()):
                if src >= len(trace_paths):
                    continue
                try:
                    rel = str(Path(trace_paths[src]).relative_to(root))
                except ValueError:
                    rel = Path(trace_paths[src]).name
                shas[k] = key.file_digests.get(rel, "")
        return [
            [t.program, int(t.label), t.attack_class, int(t.interval), int(t.n_intervals), shas[k]]
            for k, t in enumerate(dataset.traces)
        ]

    @staticmethod
    def _family_counts(dataset: Dataset) -> dict[str, dict]:
        out: dict[str, dict] = {}
        for t in dataset.traces:
            family = (t.attack_class or t.program) if t.is_attack else t.program
            cell = out.setdefault(
                family, {"kind": "attack" if t.is_attack else "benign", "traces": 0}
            )
            cell["traces"] += 1
        return {k: out[k] for k in sorted(out)}

    @staticmethod
    def _gen_provenance(trace_dir) -> dict | None:
        """When the corpus came out of ``repro.gen``, record the generator's
        own manifest digest so dataset-cache entries are traceable back to
        the exact synthetic corpus that produced them."""
        if trace_dir is None:
            return None
        manifest = Path(trace_dir) / "MANIFEST.json"
        try:
            doc = json.loads(manifest.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or "gen_version" not in doc:
            return None
        return {
            "gen_version": doc.get("gen_version"),
            "seed": doc.get("seed"),
            "count": doc.get("count"),
            "corpus_digest": doc.get("corpus_digest"),
        }

    # -- normalizer sidecars ---------------------------------------------

    @staticmethod
    def _normalizer_name(seed: int, test_frac: float) -> str:
        return f"normalizer_seed{seed}_frac{test_frac!r}.json"

    def load_normalizer(
        self, key: CorpusKey, *, seed: int, test_frac: float, n_features: int
    ) -> Normalizer | None:
        """The fitted normalizer for this corpus + split, or None.  Stats are
        JSON round-tripped through ``repr`` floats, so a loaded normalizer
        transforms bit-identically to a freshly fitted one."""
        path = self.entry_dir(key.digest) / self._normalizer_name(seed, test_frac)
        if not path.is_file():
            return None
        try:
            norm = Normalizer.load(path)
        except Exception:
            log_event(
                logger, "dataset_cache.bad_normalizer", key=key.digest[:12], file=path.name
            )
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        if norm.mean.shape[0] != n_features:
            return None
        log_event(
            logger,
            "dataset_cache.normalizer_hit",
            level=logging.DEBUG,
            key=key.digest[:12],
            file=path.name,
        )
        return norm

    def store_normalizer(
        self, key: CorpusKey, normalizer: Normalizer, *, seed: int, test_frac: float
    ) -> bool:
        entry = self.entry_dir(key.digest)
        if not entry.is_dir():
            return False
        path = entry / self._normalizer_name(seed, test_frac)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(normalizer.to_json()) + "\n")
            os.replace(tmp, path)
        except OSError as exc:
            self.stats.errors += 1
            log_event(
                logger,
                "dataset_cache.error",
                op="write_normalizer",
                key=key.digest[:12],
                error=type(exc).__name__,
            )
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        return True

    # -- normalized-matrix sidecars --------------------------------------

    @staticmethod
    def _normalized_base(seed: int, test_frac: float) -> str:
        return f"normalized_seed{seed}_frac{test_frac!r}"

    def load_normalized(
        self, key: CorpusKey, *, seed: int, test_frac: float, shape: tuple[int, ...]
    ) -> np.ndarray | None:
        """The memory-mapped normalized matrix for this corpus + split, or
        None.  The shard holds the exact float64 bytes a fresh
        ``Normalizer.transform`` produced, so a sidecar hit is bit-identical
        to recomputing — any size/CRC/shape mismatch drops both sidecar
        files and the caller transforms as if the sidecar never existed."""
        entry = self.entry_dir(key.digest)
        base = self._normalized_base(seed, test_frac)
        meta_path = entry / f"{base}.json"
        npy_path = entry / f"{base}.npy"
        try:
            meta = json.loads(meta_path.read_text())
        except FileNotFoundError:
            if npy_path.is_file():  # torn publish: shard without meta
                self._drop_normalized(meta_path, npy_path, key)
            return None
        except (OSError, ValueError):
            self._drop_normalized(meta_path, npy_path, key)
            return None
        arr = None
        try:
            ok = (
                isinstance(meta, dict)
                and meta.get("dataset_cache_version") == DATASET_CACHE_VERSION
                and meta.get("shape") == list(shape)
                and meta.get("dtype") == "float64"
                and npy_path.stat().st_size == meta.get("bytes")
                and _crc32_file(npy_path) == meta.get("crc32")
            )
            if ok:
                arr = np.load(npy_path, mmap_mode="r", allow_pickle=False)
                if arr.shape != tuple(shape) or str(arr.dtype) != "float64":
                    arr = None
        except (OSError, ValueError):
            arr = None
        if arr is None:
            self._drop_normalized(meta_path, npy_path, key)
            return None
        log_event(
            logger,
            "dataset_cache.normalized_hit",
            level=logging.DEBUG,
            key=key.digest[:12],
            file=npy_path.name,
        )
        return arr

    def _drop_normalized(self, meta_path: Path, npy_path: Path, key: CorpusKey) -> None:
        log_event(
            logger, "dataset_cache.bad_normalized", key=key.digest[:12], file=npy_path.name
        )
        for path in (meta_path, npy_path):
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def store_normalized(
        self, key: CorpusKey, X_all: np.ndarray, *, seed: int, test_frac: float
    ) -> bool:
        """Persist the normalized matrix beside its entry.  The shard lands
        before its meta file, so a crash between the two reads as torn and
        self-heals on the next load."""
        entry = self.entry_dir(key.digest)
        if not (entry / MANIFEST_NAME).is_file():
            return False
        base = self._normalized_base(seed, test_frac)
        npy_path = entry / f"{base}.npy"
        meta_path = entry / f"{base}.json"
        npy_tmp = entry / f".{base}.npy.{os.getpid()}.tmp"
        meta_tmp = entry / f".{base}.json.{os.getpid()}.tmp"
        try:
            with open(npy_tmp, "wb") as fh:
                np.save(fh, np.ascontiguousarray(X_all, dtype=np.float64), allow_pickle=False)
            meta = {
                "dataset_cache_version": DATASET_CACHE_VERSION,
                "bytes": npy_tmp.stat().st_size,
                "crc32": _crc32_file(npy_tmp),
                "shape": list(X_all.shape),
                "dtype": "float64",
            }
            os.replace(npy_tmp, npy_path)
            meta_tmp.write_text(json.dumps(meta, sort_keys=True) + "\n")
            os.replace(meta_tmp, meta_path)
        except OSError as exc:
            self.stats.errors += 1
            log_event(
                logger,
                "dataset_cache.error",
                op="write_normalized",
                key=key.digest[:12],
                error=type(exc).__name__,
            )
            for path in (npy_tmp, meta_tmp):
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
            return False
        return True

    # -- maintenance -----------------------------------------------------

    def _invalidate(self, entry: Path, digest: str) -> None:
        self.stats.invalidated += 1
        log_event(logger, "dataset_cache.invalid", key=digest[:12])
        try:
            shutil.rmtree(entry)
        except OSError as exc:
            self.stats.errors += 1
            log_event(
                logger,
                "dataset_cache.error",
                op="rmtree",
                key=digest[:12],
                error=type(exc).__name__,
            )

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*/" + MANIFEST_NAME))


def entry_problems(entry_dir) -> list[str]:
    """Audit one cache entry in place (no deletion): returns a list of
    problems, empty when the entry is internally consistent.  Shared by
    ``tools/audit_dataset_cache.py`` and the test suite."""
    entry = Path(entry_dir)
    problems: list[str] = []
    manifest = entry / MANIFEST_NAME
    try:
        doc = json.loads(manifest.read_text())
    except FileNotFoundError:
        return ["manifest_missing"]
    except OSError as exc:
        return [f"manifest_unreadable:{type(exc).__name__}"]
    except ValueError:
        return ["manifest_torn"]
    if not isinstance(doc, dict):
        return ["manifest_not_object"]
    if doc.get("dataset_cache_version") != DATASET_CACHE_VERSION:
        problems.append(f"stale_schema:{doc.get('dataset_cache_version')!r}")
    if doc.get("key") != entry.name:
        problems.append("key_mismatch")
    shards = doc.get("shards")
    if not isinstance(shards, dict):
        return problems + ["shards_missing"]
    referenced = {MANIFEST_NAME}
    for name, dtype in _SHARDS:
        referenced.add(name)
        meta = shards.get(name)
        path = entry / name
        if not isinstance(meta, dict):
            problems.append(f"{name}:unreferenced_in_manifest")
            continue
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            problems.append(f"{name}:missing")
            continue
        except OSError as exc:
            problems.append(f"{name}:unreadable:{type(exc).__name__}")
            continue
        if size != meta.get("bytes"):
            problems.append(f"{name}:size_{size}_vs_{meta.get('bytes')}")
            continue
        if _crc32_file(path) != meta.get("crc32"):
            problems.append(f"{name}:crc_mismatch")
    for child in entry.iterdir():
        if child.name in referenced or child.name.startswith(
            ("normalizer_", "normalized_")
        ):
            continue
        problems.append(f"orphan:{child.name}")
    return problems


# ---------------------------------------------------------------------------
# the one-call corpus assembly path (shared by pipeline and serve.retrain)
# ---------------------------------------------------------------------------


@dataclass
class CorpusAssembly:
    """Everything a corpus resolves to, whichever tier produced it."""

    dataset: Dataset
    quarantine: QuarantineManifest
    #: files / loaded / quarantined / quarantine_counts / degraded
    ingest: dict
    #: decode-cache hit count for this run (None on a dataset-cache hit or
    #: when no decode cache was configured)
    decode_cache_hits: int | None
    #: metrics doc for the dataset-cache tier (None when the tier is off)
    dataset_cache: dict | None
    #: wall-clock spent on ingest proper (key sweep + decode or entry load)
    ingest_s: float
    cache: DatasetCache | None = None
    key: CorpusKey | None = None


def assemble_corpus(
    trace_dir,
    *,
    pattern: str = "**/*.pkl",
    workers: int = 1,
    retry_policy: RetryPolicy | None = None,
    decode_timeout_s: float = 30.0,
    faults: FaultPlan | None = None,
    cache_root=None,
    dataset_cache_root=None,
    quarantine_path=None,
) -> CorpusAssembly:
    """Resolve a corpus directory to an assembled :class:`Dataset`.

    With ``dataset_cache_root`` set, a warm corpus short-circuits the whole
    decode+assemble path through one mmap load; a miss falls through to the
    usual :func:`load_corpus_pooled` + :func:`build_dataset` walk and then
    publishes the result for the next run.  Raises :class:`IngestError` when
    the corpus has no decodable traces (same contract as the pipeline).
    """
    t0 = time.monotonic()
    cache = DatasetCache(dataset_cache_root) if dataset_cache_root is not None else None
    key = None
    if cache is not None:
        key = cache.corpus_key(
            trace_dir,
            pattern=pattern,
            faults=faults,
            retry_policy=retry_policy,
            decode_timeout_s=decode_timeout_s,
            workers=workers,
        )
        cached = cache.load(key)
        if cached is not None:
            if quarantine_path is not None:
                cached.quarantine.write(quarantine_path)
            return CorpusAssembly(
                dataset=cached.dataset,
                quarantine=cached.quarantine,
                ingest=cached.ingest,
                decode_cache_hits=None,
                dataset_cache={"enabled": True, "hit": True, "key": key.digest[:12]},
                ingest_s=time.monotonic() - t0,
                cache=cache,
                key=key,
            )

    results, quarantine = load_corpus_pooled(
        trace_dir,
        workers=workers,
        pattern=pattern,
        retry_policy=retry_policy,
        decode_timeout_s=decode_timeout_s,
        faults=faults,
        cache_root=cache_root,
    )
    if quarantine_path is not None:
        quarantine.write(quarantine_path)
    n_files = len(results) + len(quarantine)
    if not results:
        # the entire corpus was quarantined (or the directory is empty):
        # refuse loudly instead of training on an empty matrix
        log_event(
            logger,
            "pipeline.empty_corpus",
            level=logging.ERROR,
            trace_dir=str(trace_dir),
            files=n_files,
            quarantined=len(quarantine),
            counts=json.dumps(quarantine.counts(), sort_keys=True),
        )
        raise IngestError(
            f"no decodable traces under {trace_dir} "
            f"({n_files} files, {len(quarantine)} quarantined)"
        )
    t_ingest = time.monotonic()

    dataset = build_dataset([r.trace for r in results])
    ingest = {
        "files": n_files,
        "loaded": len(results),
        "quarantined": len(quarantine),
        "quarantine_counts": quarantine.counts(),
        "degraded": sum(1 for r in results if r.report.degraded),
    }
    dataset_cache_doc = None
    if cache is not None and key is not None:
        stored = cache.store(
            key,
            dataset,
            quarantine=quarantine,
            ingest=ingest,
            trace_paths=[r.path for r in results],
            trace_dir=trace_dir,
        )
        dataset_cache_doc = {
            "enabled": True,
            "hit": False,
            "stored": stored,
            "key": key.digest[:12],
        }
    return CorpusAssembly(
        dataset=dataset,
        quarantine=quarantine,
        ingest=ingest,
        decode_cache_hits=(
            sum(1 for r in results if r.from_cache) if cache_root is not None else None
        ),
        dataset_cache=dataset_cache_doc,
        ingest_s=t_ingest - t0,
        cache=cache,
        key=key,
    )
