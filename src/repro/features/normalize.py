"""NaN/Inf sanitization + z-score normalization with persisted statistics.

The fitted statistics (per-column median for imputation, mean, std) are
saved as JSON so a model trained in one process can score traffic in another
with bit-identical preprocessing.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import FeatureError

STATS_VERSION = 1

#: z-scores are clipped here; salvaged corpora contain the occasional
#: misaligned decode that would otherwise dominate every dot product
Z_CLIP = 8.0


class Normalizer:
    """fit() on training data, transform() anywhere, save()/load() between.

    With ``log_scale`` (the default) values pass through a signed ``log1p``
    before the z-score: hardware counters are heavy-tailed across many orders
    of magnitude, and interval-length differences between captures become
    additive shifts the z-score absorbs.
    """

    def __init__(self, *, log_scale: bool = True):
        self.log_scale = log_scale
        self.median: np.ndarray | None = None
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self.mean is not None

    def _prescale(self, X: np.ndarray) -> np.ndarray:
        if not self.log_scale:
            return X
        with np.errstate(invalid="ignore"):
            return np.sign(X) * np.log1p(np.abs(X))

    def fit(self, X: np.ndarray) -> "Normalizer":
        X = self._prescale(np.asarray(X, dtype=np.float64))
        if X.ndim != 2 or X.shape[0] == 0:
            raise FeatureError(f"cannot fit normalizer on shape {X.shape}")
        finite = np.isfinite(X)
        if not finite.any():
            raise FeatureError("training matrix has no finite values")
        masked = np.where(finite, X, np.nan)
        with np.errstate(all="ignore"):
            self.median = np.nan_to_num(np.nanmedian(masked, axis=0), nan=0.0)
            imputed = np.where(finite, X, self.median)
            self.mean = imputed.mean(axis=0)
            std = imputed.std(axis=0)
        std[~np.isfinite(std) | (std < 1e-12)] = 1.0
        self.std = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Impute non-finite cells with the fitted median, z-score, clip."""
        if not self.fitted:
            raise FeatureError("normalizer is not fitted")
        X = self._prescale(np.asarray(X, dtype=np.float64))
        if X.ndim != 2 or X.shape[1] != self.mean.shape[0]:
            raise FeatureError(
                f"matrix shape {X.shape} does not match fitted width {self.mean.shape[0]}"
            )
        finite = np.isfinite(X)
        imputed = np.where(finite, X, self.median)
        z = (imputed - self.mean) / self.std
        return np.clip(z, -Z_CLIP, Z_CLIP)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict:
        if not self.fitted:
            raise FeatureError("cannot persist an unfitted normalizer")
        return {
            "version": STATS_VERSION,
            "n_features": int(self.mean.shape[0]),
            "log_scale": self.log_scale,
            "median": self.median.tolist(),
            "mean": self.mean.tolist(),
            "std": self.std.tolist(),
        }

    def save(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json()) + "\n")

    @classmethod
    def load(cls, path) -> "Normalizer":
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise FeatureError(f"cannot load normalizer stats from {path}: {exc}") from exc
        if doc.get("version") != STATS_VERSION:
            raise FeatureError(f"unsupported normalizer stats version {doc.get('version')!r}")
        norm = cls(log_scale=bool(doc.get("log_scale", False)))
        try:
            norm.median = np.asarray(doc["median"], dtype=np.float64)
            norm.mean = np.asarray(doc["mean"], dtype=np.float64)
            norm.std = np.asarray(doc["std"], dtype=np.float64)
        except KeyError as exc:
            raise FeatureError(f"normalizer stats missing field {exc}") from exc
        if not (norm.median.shape == norm.mean.shape == norm.std.shape):
            raise FeatureError("normalizer stats arrays disagree on width")
        return norm
