"""Feature layer: per-interval feature assembly, NaN/Inf sanitization,
z-score normalization with persisted statistics, and the memory-mapped
columnar dataset cache that makes warm corpus assembly a single mmap load."""

from .assemble import Dataset, build_dataset
from .dataset_cache import (
    DATASET_CACHE_VERSION,
    CorpusAssembly,
    CorpusKey,
    DatasetCache,
    TraceMeta,
    assemble_corpus,
)
from .normalize import Normalizer

__all__ = [
    "Dataset",
    "build_dataset",
    "Normalizer",
    "DATASET_CACHE_VERSION",
    "CorpusAssembly",
    "CorpusKey",
    "DatasetCache",
    "TraceMeta",
    "assemble_corpus",
]
