"""Feature layer: per-interval feature assembly, NaN/Inf sanitization, and
z-score normalization with persisted statistics."""

from .assemble import Dataset, build_dataset
from .normalize import Normalizer

__all__ = ["Dataset", "build_dataset", "Normalizer"]
