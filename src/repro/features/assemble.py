"""Assemble per-interval feature matrices from decoded traces.

Each interval row of each trace becomes one sample; ``groups`` maps samples
back to their source trace so splits and trace-level verdicts never leak
intervals of one trace across the train/test boundary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..errors import FeatureError
from ..sim.trace import Trace
from ..telemetry import get_logger, log_event

logger = get_logger("repro.features")


@dataclass
class Dataset:
    """Flattened per-interval samples plus per-trace bookkeeping."""

    X: np.ndarray  # (n_samples, n_features) float64, may contain NaN
    y: np.ndarray  # (n_samples,) int, -1 benign / +1 attack
    groups: np.ndarray  # (n_samples,) int index into `traces`
    traces: list[Trace] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    def trace_labels(self) -> np.ndarray:
        return np.array([1 if t.is_attack else -1 for t in self.traces], dtype=np.int64)


def build_dataset(traces: list[Trace]) -> Dataset:
    """Stack interval rows of all traces sharing the modal feature width.

    Traces with a different width (a damaged capture or a foreign schema) are
    skipped with a logged reason rather than poisoning the matrix.
    """
    if not traces:
        raise FeatureError("no traces to assemble")
    widths = Counter(t.n_features for t in traces)
    width = widths.most_common(1)[0][0]

    kept: list[Trace] = []
    skipped: list[tuple[str, str]] = []
    blocks, labels, groups = [], [], []
    for trace in traces:
        if trace.n_features != width:
            reason = f"feature_width_{trace.n_features}_vs_{width}"
            skipped.append((trace.program, reason))
            log_event(logger, "features.skip", program=trace.program, reason=reason)
            continue
        if trace.n_intervals == 0:
            skipped.append((trace.program, "no_intervals"))
            continue
        index = len(kept)
        kept.append(trace)
        blocks.append(np.asarray(trace.rows, dtype=np.float64))
        label = 1 if trace.is_attack else -1
        labels.extend([label] * trace.n_intervals)
        groups.extend([index] * trace.n_intervals)
    if not kept:
        raise FeatureError("every trace was skipped during assembly")

    dataset = Dataset(
        X=np.vstack(blocks),
        y=np.asarray(labels, dtype=np.int64),
        groups=np.asarray(groups, dtype=np.int64),
        traces=kept,
        skipped=skipped,
    )
    log_event(
        logger,
        "features.assembled",
        traces=len(kept),
        samples=dataset.n_samples,
        features=dataset.n_features,
        skipped=len(skipped),
    )
    return dataset
