"""Assemble per-interval feature matrices from decoded traces.

Each interval row of each trace becomes one sample; ``groups`` maps samples
back to their source trace so splits and trace-level verdicts never leak
intervals of one trace across the train/test boundary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..errors import FeatureError
from ..sim.trace import Trace
from ..telemetry import get_logger, log_event

logger = get_logger("repro.features")


@dataclass
class Dataset:
    """Flattened per-interval samples plus per-trace bookkeeping.

    ``traces`` holds anything with the trace-identity attributes the split
    and per-family evaluation read (``program``, ``label``, ``attack_class``,
    ``is_attack``, ``interval``, ``n_intervals``): real :class:`Trace`
    objects on the cold assembly path, lightweight
    :class:`~repro.features.dataset_cache.TraceMeta` records when the dataset
    was rehydrated from the columnar dataset cache.
    """

    X: np.ndarray  # (n_samples, n_features) float64, may contain NaN
    y: np.ndarray  # (n_samples,) int, -1 benign / +1 attack
    groups: np.ndarray  # (n_samples,) int index into `traces`
    traces: list[Trace] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)
    #: index of each kept trace in the list ``build_dataset`` received
    #: (None for datasets not built from an input list, e.g. cache loads)
    source_indices: np.ndarray | None = None

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    def trace_labels(self) -> np.ndarray:
        return np.array([1 if t.is_attack else -1 for t in self.traces], dtype=np.int64)


def build_dataset(traces: list[Trace]) -> Dataset:
    """Stack interval rows of all traces sharing the modal feature width.

    Traces with a different width (a damaged capture or a foreign schema) are
    skipped with a logged reason rather than poisoning the matrix.
    """
    if not traces:
        raise FeatureError("no traces to assemble")
    widths = Counter(t.n_features for t in traces)
    width = widths.most_common(1)[0][0]

    kept: list[Trace] = []
    skipped: list[tuple[str, str]] = []
    blocks: list[np.ndarray] = []
    source: list[int] = []
    for index, trace in enumerate(traces):
        if trace.n_features != width:
            reason = f"feature_width_{trace.n_features}_vs_{width}"
            skipped.append((trace.program, reason))
            log_event(logger, "features.skip", program=trace.program, reason=reason)
            continue
        if trace.n_intervals == 0:
            skipped.append((trace.program, "no_intervals"))
            continue
        kept.append(trace)
        source.append(index)
        blocks.append(np.asarray(trace.rows, dtype=np.float64))
    if not kept:
        raise FeatureError("every trace was skipped during assembly")

    # one preallocated stack + np.repeat instead of per-trace Python extends:
    # bit-identical to the historical loop, ~10x cheaper at 100k traces
    counts = np.array([block.shape[0] for block in blocks], dtype=np.int64)
    n_samples = int(counts.sum())
    X = np.empty((n_samples, width), dtype=np.float64)
    offset = 0
    for block in blocks:
        X[offset : offset + block.shape[0]] = block
        offset += block.shape[0]
    trace_labels = np.array([1 if t.is_attack else -1 for t in kept], dtype=np.int64)

    dataset = Dataset(
        X=X,
        y=np.repeat(trace_labels, counts),
        groups=np.repeat(np.arange(len(kept), dtype=np.int64), counts),
        traces=kept,
        skipped=skipped,
        source_indices=np.asarray(source, dtype=np.int64),
    )
    log_event(
        logger,
        "features.assembled",
        traces=len(kept),
        samples=dataset.n_samples,
        features=dataset.n_features,
        skipped=len(skipped),
    )
    return dataset
