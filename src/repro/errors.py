"""Shared error taxonomy for the PerSpectron reproduction.

Every failure that crosses a layer boundary is typed.  The ingest layer
relies on this: anything that is a :class:`TraceDecodeError` is a permanent,
per-file problem (quarantine, never retry), anything that is a
:class:`TransientIOError`-ish ``OSError`` is retried with backoff, and
everything else is a bug that must surface loudly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""

    #: short machine-readable tag used in quarantine manifests / logs
    code = "repro_error"

    def describe(self) -> dict:
        return {"code": self.code, "type": type(self).__name__, "message": str(self)}


# ---------------------------------------------------------------------------
# codec errors
# ---------------------------------------------------------------------------


class TraceDecodeError(ReproError):
    """A trace file could not be decoded.  Permanent: do not retry."""

    code = "decode_error"


class BadHeader(TraceDecodeError):
    """The file preamble is not a recognised trace-cache header."""

    code = "bad_header"


class TruncatedTrace(TraceDecodeError):
    """The byte stream ends before the trace body is complete."""

    code = "truncated"


class SchemaMismatch(TraceDecodeError):
    """The body decodes but does not describe a well-formed Trace."""

    code = "schema_mismatch"


class DecodeTimeout(TraceDecodeError):
    """Decoding exceeded its per-file time budget (possible decompression
    bomb or pathological corruption)."""

    code = "decode_timeout"


# ---------------------------------------------------------------------------
# ingest errors
# ---------------------------------------------------------------------------


class IngestError(ReproError):
    code = "ingest_error"


class RetryExhausted(IngestError):
    """All retry attempts for a transient failure were consumed."""

    code = "retry_exhausted"

    def __init__(self, message: str, attempts: int, last: BaseException | None = None):
        super().__init__(message)
        self.attempts = attempts
        self.last = last

    def describe(self) -> dict:
        d = super().describe()
        d["attempts"] = self.attempts
        if self.last is not None:
            d["last_error"] = f"{type(self.last).__name__}: {self.last}"
        return d


class InjectedIOError(OSError):
    """Fault-injection stand-in for a transient I/O failure."""


# ---------------------------------------------------------------------------
# feature / model errors
# ---------------------------------------------------------------------------


class FeatureError(ReproError):
    code = "feature_error"


class ModelError(ReproError):
    code = "model_error"


class ArtifactError(ModelError):
    """A versioned model artifact failed verification (missing file, checksum
    mismatch, unsupported version).  Loaders refuse the artifact rather than
    serving half a model; the serving layer falls back to the last good
    version."""

    code = "artifact_error"


# ---------------------------------------------------------------------------
# serving errors
# ---------------------------------------------------------------------------


class ServeError(ReproError):
    """A per-request serving failure.  Carries an HTTP-style ``status`` so the
    daemon can answer every failure with a structured response instead of
    dropping the connection."""

    code = "serve_error"
    status = 500

    def describe(self) -> dict:
        d = super().describe()
        d["status"] = self.status
        return d


class BadRequest(ServeError):
    """The request line is not a well-formed scoring request."""

    code = "bad_request"
    status = 400


class Overloaded(ServeError):
    """The bounded request queue is full; the request was shed."""

    code = "overloaded"
    status = 503


class DeadlineExceeded(ServeError):
    """The request sat in the queue past its deadline."""

    code = "deadline_exceeded"
    status = 504


class ScoringWedged(ServeError):
    """The scoring task exceeded its watchdog budget and was recycled."""

    code = "scoring_wedged"
    status = 500


# ---------------------------------------------------------------------------
# drift / online-learning errors
# ---------------------------------------------------------------------------


class DriftError(ReproError):
    """A drift-monitor or retrain-supervisor failure (bad configuration,
    malformed feedback, unusable retrain output)."""

    code = "drift_error"


class RetrainFailed(DriftError):
    """A retrain attempt did not produce a loadable candidate artifact
    (subprocess crash, timeout, or candidate verification failure).  The live
    model is never touched by a failed retrain."""

    code = "retrain_failed"


# ---------------------------------------------------------------------------
# generator errors
# ---------------------------------------------------------------------------


class GenError(ReproError):
    """A synthetic-corpus generation failure."""

    code = "gen_error"


class GenSpecError(GenError):
    """A family spec or generation request is malformed or out of bounds."""

    code = "gen_spec"
