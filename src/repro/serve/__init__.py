"""Always-on scoring service.

``python -m repro.serve`` runs an asyncio daemon that loads a versioned,
integrity-checked model artifact (:mod:`repro.model.artifact`) once and
scores trace payloads over a newline-delimited-JSON TCP endpoint, with
HTTP ``/healthz`` / ``/readyz`` / ``/metricsz`` probes on the same port.

Robustness contract:

- one corrupt payload gets a structured error response (and a quarantine
  record) — it never kills the accept loop or anyone else's request;
- a bounded request queue applies backpressure: when it is full, requests
  are shed with an explicit 503-style response instead of queueing forever;
- per-request deadlines, slow-client read/write timeouts, and a watchdog
  that recycles a wedged scoring task keep one bad client or batch from
  wedging the daemon;
- hot artifact reloads that fail verification fall back to the last good
  version; SIGTERM drains in-flight requests before exit.

With ``--drift-window`` / ``--supervise`` the daemon additionally runs the
drift-aware online-learning loop: served margins and labeled feedback feed a
:class:`~repro.drift.DriftMonitor`, drift verdicts trigger a subprocess
retrain that publishes a **candidate** artifact, the candidate is
shadow-scored against live traffic, and only a passed canary gate swaps the
``CURRENT`` pointer; a live model falling below the rollback floor is
swapped back to the last good version.
"""

from .scorer import RequestScorer, ScoreRequest
from .service import ServeConfig, ScoringService
from .supervisor import FeedbackBuffer, RetrainSupervisor, SupervisorStats

__all__ = [
    "FeedbackBuffer",
    "RequestScorer",
    "RetrainSupervisor",
    "ScoreRequest",
    "ScoringService",
    "ServeConfig",
    "SupervisorStats",
]
