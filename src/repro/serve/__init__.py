"""Always-on scoring service.

``python -m repro.serve`` runs an asyncio daemon that loads a versioned,
integrity-checked model artifact (:mod:`repro.model.artifact`) once and
scores trace payloads over a newline-delimited-JSON TCP endpoint, with
HTTP ``/healthz`` / ``/readyz`` / ``/metricsz`` probes on the same port.

Robustness contract:

- one corrupt payload gets a structured error response (and a quarantine
  record) — it never kills the accept loop or anyone else's request;
- a bounded request queue applies backpressure: when it is full, requests
  are shed with an explicit 503-style response instead of queueing forever;
- per-request deadlines, slow-client read/write timeouts, and a watchdog
  that recycles a wedged scoring task keep one bad client or batch from
  wedging the daemon;
- hot artifact reloads that fail verification fall back to the last good
  version; SIGTERM drains in-flight requests before exit.
"""

from .scorer import RequestScorer, ScoreRequest
from .service import ServeConfig, ScoringService

__all__ = ["RequestScorer", "ScoreRequest", "ServeConfig", "ScoringService"]
