"""The asyncio scoring daemon.

One event loop, four long-lived tasks:

- **accept loop** (``asyncio.start_server``): reads NDJSON request lines,
  sniffs HTTP probes (``GET /healthz`` etc.) on the same port, enqueues
  scoring requests onto a *bounded* queue, and sheds with a structured
  503-style response when the queue is full.
- **batcher**: pulls requests off the queue, coalesces a micro-batch (up to
  ``max_batch`` requests or ``batch_window_ms``), drops already-expired
  requests with 504-style responses, and runs the synchronous
  :class:`~repro.serve.scorer.RequestScorer` in the default executor under a
  ``score_timeout_s`` watchdog budget — a wedged batch answers every caller
  with a structured error instead of hanging them.
- **watchdog**: restarts the batcher if it ever dies or wedges past its
  budget, so a scoring bug degrades one batch, not the daemon.
- **reloader**: polls the artifact store's ``CURRENT`` pointer; a changed
  pointer hot-swaps the scorer, and a version that fails verification is
  skipped (last-good artifact keeps serving) until the pointer moves again.

``SIGTERM``/``SIGINT`` set the draining flag: ``/readyz`` flips to 503, the
listener closes, queued requests are scored and answered, then the daemon
exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass

from ..drift import DriftConfig, DriftMonitor
from ..errors import ArtifactError, BadRequest, DeadlineExceeded, Overloaded, ScoringWedged
from ..model.artifact import ArtifactStore
from ..telemetry import get_logger, log_event, span
from .scorer import RequestScorer, ScoreRequest, ScorerStats, error_response, parse_request_line
from .supervisor import RetrainSupervisor

logger = get_logger("repro.serve")

_HTTP_METHODS = (b"GET ", b"HEAD ")


@dataclass
class ServeConfig:
    artifact_root: str = "runs/artifact"
    host: str = "127.0.0.1"
    port: int = 8765
    #: bounded request queue: beyond this, requests are shed with a 503
    max_queue: int = 256
    #: requests coalesced into one scoring call
    max_batch: int = 32
    #: how long the batcher waits to fill a batch once it holds one request
    batch_window_ms: float = 2.0
    #: per-request deadline (queue wait + scoring)
    request_timeout_s: float = 10.0
    #: watchdog budget for one scoring batch
    score_timeout_s: float = 30.0
    #: slow-client write budget; a client that cannot drain is disconnected
    write_timeout_s: float = 5.0
    #: idle read budget per connection
    idle_timeout_s: float = 60.0
    #: seconds between CURRENT-pointer polls (0 disables hot reload)
    reload_poll_s: float = 2.0
    #: longest accepted request line
    max_line_bytes: int = 8 << 20
    #: salvage-decode budget per request payload
    decode_timeout_s: float = 10.0
    #: rows per scoring chunk (None = model default)
    batch_size: int | None = None
    #: quarantine manifest for refused payloads (None = in-memory only)
    quarantine_path: str | None = None
    #: hard cap on drain time at shutdown
    drain_timeout_s: float = 30.0

    # -- drift monitoring / online learning (defaults keep all of it OFF,
    # -- so a daemon configured like the previous release behaves
    # -- bit-identically to it) -----------------------------------------
    #: scored traces per drift-evaluation window (0 disables the monitor)
    drift_window: int = 0
    #: labeled events a window needs before accuracy verdicts fire
    drift_min_feedback: int = 20
    #: PSI of the margin distribution vs the reference above this is drift
    drift_psi_threshold: float = 0.25
    #: |margin mean shift| in reference-std units above this is drift
    drift_margin_sigma: float = 3.0
    #: rolling feedback accuracy below this is a drift verdict
    drift_accuracy_floor: float = 0.75
    #: rolling feedback accuracy below this raises the rollback signal
    drift_rollback_floor: float = 0.5
    #: quiet windows after a drift verdict
    drift_cooldown_windows: int = 2
    #: where suspect windows are quarantined as JSON (None = telemetry only)
    drift_quarantine_dir: str | None = None
    #: enable the retrain -> canary -> promote/rollback supervisor
    supervise: bool = False
    #: retrain strategy: incremental passes over feedback, or full refit
    retrain_mode: str = "partial"
    #: partial_fit passes (or minimum full-fit epochs) per retrain
    retrain_passes: int = 2
    #: wall-clock budget for one retrain subprocess
    retrain_timeout_s: float = 120.0
    #: member-fit processes inside a full-mode retrain (bit-identical for
    #: any N; partial mode always trains in-process)
    retrain_workers: int = 1
    #: pooled-retrain transport: "auto" / "on" / "off" (see repro.model.shm)
    retrain_shm: str = "auto"
    #: labeled traces needed before a retrain is attempted
    retrain_min_traces: int = 8
    #: base / cap of the exponential backoff after a failed retrain or a
    #: rejected canary
    retrain_backoff_s: float = 5.0
    retrain_backoff_max_s: float = 300.0
    #: labeled traces the canary gate wants to shadow-score
    canary_min_traces: int = 16
    #: candidate must reach live accuracy minus this tolerance...
    canary_margin: float = 0.02
    #: ...and this absolute accuracy floor, to be promoted
    canary_floor: float = 0.6
    #: give up on a canary that cannot collect labeled traffic in time
    canary_timeout_s: float = 60.0
    #: labeled traces kept in the feedback ring buffer
    feedback_capacity: int = 4096


class ScoringService:
    """Lifecycle owner for the daemon; usable in-process for tests."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.store = ArtifactStore(config.artifact_root)
        self.stats = ScorerStats()
        self.scorer: RequestScorer | None = None
        self.queue: asyncio.Queue[ScoreRequest] = asyncio.Queue(maxsize=max(1, config.max_queue))
        self.draining = False
        self._started_mono = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        self._batcher_task: asyncio.Task | None = None
        self._watchdog_task: asyncio.Task | None = None
        self._reload_task: asyncio.Task | None = None
        self._batch_started_mono: float | None = None
        #: requests dequeued by the batcher but not yet answered; drain waits
        #: on this as well as the queue so the coalescing window cannot hide
        #: a request from shutdown
        self._inflight = 0
        self._bad_versions: set[str] = set()
        self._stop_event = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()
        self.monitor: DriftMonitor | None = None
        if config.drift_window > 0:
            self.monitor = DriftMonitor(
                DriftConfig(
                    window=config.drift_window,
                    min_feedback=config.drift_min_feedback,
                    psi_threshold=config.drift_psi_threshold,
                    margin_sigma=config.drift_margin_sigma,
                    accuracy_floor=config.drift_accuracy_floor,
                    rollback_floor=config.drift_rollback_floor,
                    cooldown_windows=config.drift_cooldown_windows,
                    quarantine_dir=config.drift_quarantine_dir,
                )
            )
        self.supervisor: RetrainSupervisor | None = (
            RetrainSupervisor(self, config) if config.supervise else None
        )
        self._supervisor_task: asyncio.Task | None = None

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    @property
    def ready(self) -> bool:
        return self.scorer is not None and not self.draining

    async def start(self) -> None:
        """Load the artifact (with last-good fallback) and begin serving."""
        loaded = self.store.load_with_fallback()
        current = self.store.current()
        if current is not None and current != loaded.version:
            self._bad_versions.add(current)
        self.scorer = self._make_scorer(loaded)
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=self.config.max_line_bytes,
        )
        self._batcher_task = asyncio.create_task(self._batcher(), name="serve-batcher")
        self._watchdog_task = asyncio.create_task(self._watchdog(), name="serve-watchdog")
        if self.config.reload_poll_s > 0:
            self._reload_task = asyncio.create_task(self._reloader(), name="serve-reloader")
        if self.supervisor is not None:
            self._supervisor_task = asyncio.create_task(
                self.supervisor.run(), name="serve-supervisor"
            )
        log_event(
            logger,
            "serve.start",
            host=self.config.host,
            port=self.port,
            artifact=loaded.version,
            max_queue=self.config.max_queue,
            max_batch=self.config.max_batch,
        )

    def _make_scorer(self, loaded) -> RequestScorer:
        previous = self.scorer
        return RequestScorer(
            loaded,
            quarantine=previous.quarantine if previous is not None else None,
            quarantine_path=self.config.quarantine_path,
            decode_timeout_s=self.config.decode_timeout_s,
            batch_size=self.config.batch_size,
        )

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, self.request_stop, sig.name)

    def request_stop(self, reason: str = "request") -> None:
        if not self._stop_event.is_set():
            log_event(logger, "serve.stop_requested", reason=reason)
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        await self._stop_event.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Drain-then-exit: stop accepting, answer everything queued, stop."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_timeout_s
        while (not self.queue.empty() or self._inflight) and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        drained = self.queue.empty() and not self._inflight
        for task in (
            self._supervisor_task,
            self._reload_task,
            self._watchdog_task,
            self._batcher_task,
        ):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        # connections still waiting on a response have been answered by the
        # drained batcher; anything left is a half-open client
        for writer in list(self._writers):
            writer.close()
        log_event(
            logger,
            "serve.stopped",
            drained=drained,
            **self.stats.to_json() | {"error_codes": "-"},
        )

    # -- connection handling --------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=self.config.idle_timeout_s
                    )
                except asyncio.TimeoutError:
                    self.stats.slow_client_drops += 1
                    log_event(logger, "serve.idle_drop", peer=_peer(writer))
                    return
                except (ValueError, asyncio.LimitOverrunError):
                    # line longer than max_line_bytes: refuse and drop the
                    # connection (the stream is no longer line-aligned)
                    self.stats.bad_lines += 1
                    await self._send_line(
                        writer,
                        error_response(
                            "?", BadRequest(f"line exceeds {self.config.max_line_bytes} bytes")
                        ),
                    )
                    return
                if not line:
                    return  # EOF
                if line.startswith(_HTTP_METHODS):
                    await self._handle_http(line, reader, writer)
                    return
                if not line.strip():
                    continue
                response = await self._handle_request_line(line)
                if not await self._send_line(writer, response):
                    return
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _handle_request_line(self, line: bytes) -> dict:
        self.stats.received += 1
        now = time.monotonic()
        try:
            raw = parse_request_line(line)
        except BadRequest as exc:
            self.stats.bad_lines += 1
            return self._finish("?", error_response("?", exc), now)
        req_id = str(raw.get("id", "?"))
        req = ScoreRequest(
            req_id=req_id,
            raw=raw,
            received_mono=now,
            deadline_mono=now + self.config.request_timeout_s,
        )
        if self.draining:
            return self._finish(
                req_id, error_response(req_id, Overloaded("service is draining")), now
            )
        req.future = asyncio.get_running_loop().create_future()
        try:
            self.queue.put_nowait(req)
        except asyncio.QueueFull:
            self.stats.shed += 1
            return self._finish(
                req_id,
                error_response(
                    req_id,
                    Overloaded(
                        f"request queue is full ({self.config.max_queue}); shed"
                    ),
                ),
                now,
            )
        try:
            response = await asyncio.wait_for(
                req.future,
                timeout=self.config.request_timeout_s + self.config.score_timeout_s + 5.0,
            )
        except asyncio.TimeoutError:  # batcher lost the request: answer anyway
            response = error_response(req_id, ScoringWedged("response never materialized"))
        return self._finish(req_id, response, now)

    def _finish(self, req_id: str, response: dict, t0: float) -> dict:
        latency_ms = (time.monotonic() - t0) * 1e3
        response["latency_ms"] = round(latency_ms, 3)
        self.stats.answered += 1
        if response.get("ok"):
            self.stats.ok += 1
        else:
            code = response.get("error", {}).get("code", "internal")
            self.stats.count_error(code)
            if response.get("status") == 422:
                self.stats.quarantined += 1
        log_event(
            logger,
            "serve.request",
            level=10,  # DEBUG: per-request spans stay greppable, not noisy
            request=req_id,
            status=response.get("status"),
            ok=response.get("ok"),
            latency_ms=f"{latency_ms:.2f}",
        )
        return response

    async def _send_line(self, writer: asyncio.StreamWriter, doc: dict) -> bool:
        """Write one response line under the slow-client budget.  Returns
        False when the client could not take it (connection is dropped)."""
        try:
            writer.write(json.dumps(doc, separators=(",", ":")).encode() + b"\n")
            await asyncio.wait_for(writer.drain(), timeout=self.config.write_timeout_s)
        except asyncio.TimeoutError:
            self.stats.slow_client_drops += 1
            log_event(logger, "serve.slow_client_drop", peer=_peer(writer))
            writer.close()
            return False
        except (ConnectionError, BrokenPipeError, RuntimeError):
            return False
        return True

    # -- HTTP probes -----------------------------------------------------

    async def _handle_http(self, request_line: bytes, reader, writer) -> None:
        self.stats.http_probes += 1
        try:
            target = request_line.split()[1].decode("latin-1")
        except (IndexError, UnicodeDecodeError):
            target = "/"
        try:  # drain headers so the close is clean; tolerate rude clients
            await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=1.0)
        except Exception:
            pass
        status, body = self._probe_response(target)
        payload = json.dumps(body, indent=None).encode()
        head = (
            f"HTTP/1.1 {status} {'OK' if status == 200 else 'Service Unavailable' if status == 503 else 'Not Found'}\r\n"
            f"Content-Type: application/json\r\nContent-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        try:
            writer.write(head + payload)
            await asyncio.wait_for(writer.drain(), timeout=self.config.write_timeout_s)
        except Exception:
            pass

    def _probe_response(self, target: str) -> tuple[int, dict]:
        target = target.split("?", 1)[0]
        if target == "/healthz":
            return 200, {"status": "ok", "uptime_s": round(time.monotonic() - self._started_mono, 3)}
        if target == "/readyz":
            if self.ready:
                return 200, {"status": "ready", "artifact": self.scorer.artifact.version}
            return 503, {"status": "draining" if self.draining else "loading"}
        if target in ("/metricsz", "/metrics"):
            return 200, {
                "artifact": self.scorer.artifact.version if self.scorer else None,
                "queue_depth": self.queue.qsize(),
                "queue_limit": self.config.max_queue,
                "draining": self.draining,
                "uptime_s": round(time.monotonic() - self._started_mono, 3),
                "counters": self.stats.to_json(),
                "drift": self.monitor.counters() if self.monitor is not None else None,
                "supervisor": (
                    self.supervisor.stats.to_json() | {
                        "feedback_buffered": len(self.supervisor.feedback),
                        "backoff_remaining_s": round(self.supervisor.backoff_remaining(), 3),
                    }
                    if self.supervisor is not None
                    else None
                ),
            }
        return 404, {"error": f"unknown probe {target}"}

    # -- batcher ---------------------------------------------------------

    async def _batcher(self) -> None:
        loop = asyncio.get_running_loop()
        window_s = self.config.batch_window_ms / 1e3
        while True:
            req = await self.queue.get()
            self._inflight += 1
            batch = [req]
            t0 = loop.time()
            while len(batch) < self.config.max_batch:
                remaining = window_s - (loop.time() - t0)
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(self.queue.get(), timeout=remaining))
                    self._inflight += 1
                except asyncio.TimeoutError:
                    break
            try:
                await self._score_batch(batch)
            finally:
                self._inflight -= len(batch)

    async def _score_batch(self, batch: list[ScoreRequest]) -> None:
        now = time.monotonic()
        live: list[ScoreRequest] = []
        for req in batch:
            if req.expired(now):
                self.stats.expired += 1
                self._respond(
                    req,
                    error_response(
                        req.req_id, DeadlineExceeded("request expired in the queue")
                    ),
                )
            else:
                live.append(req)
        if not live:
            return
        self.stats.batches += 1
        self._batch_started_mono = time.monotonic()
        loop = asyncio.get_running_loop()
        scorer = self.scorer  # pin: a concurrent reload must not split a batch
        try:
            with span(
                logger, "serve.batch", requests=len(live), artifact=scorer.artifact.version
            ):
                responses = await asyncio.wait_for(
                    loop.run_in_executor(None, scorer.score_batch, live),
                    timeout=self.config.score_timeout_s,
                )
        except asyncio.TimeoutError:
            self.stats.score_timeouts += 1
            for req in live:
                self._respond(
                    req,
                    error_response(
                        req.req_id,
                        ScoringWedged(
                            f"scoring exceeded {self.config.score_timeout_s}s; batch recycled"
                        ),
                    ),
                )
            return
        except Exception as exc:  # a scoring bug answers, never wedges
            self.stats.score_errors += 1
            log_event(
                logger, "serve.score_error", level=40, error=f"{type(exc).__name__}: {exc}"
            )
            for req in live:
                self._respond(req, error_response(req.req_id, exc))
            return
        finally:
            self._batch_started_mono = None
        for req, response in zip(live, responses):
            self._respond(req, response)
        self._observe_batch(live, responses)

    def _observe_batch(self, batch: list[ScoreRequest], responses: list[dict]) -> None:
        """Feed the drift monitor and the supervisor's feedback buffer after
        a scored batch.  Runs on the event-loop thread (so the monitor needs
        no locks) and never raises: the drift loop observes serving, it must
        not be able to break it."""
        if self.monitor is None and self.supervisor is None:
            return
        try:
            for req, resp in zip(batch, responses):
                if not resp.get("ok"):
                    continue
                if self.monitor is not None:
                    self.monitor.observe(
                        resp["margin"],
                        resp["verdict"],
                        label=req.label,
                        family=req.family,
                    )
                if (
                    self.supervisor is not None
                    and req.label is not None
                    and req.rows is not None
                ):
                    self.supervisor.add_feedback(req.rows, req.label, req.family)
            if self.monitor is not None:
                report = self.monitor.maybe_evaluate()
                if report is not None and self.supervisor is not None:
                    self.supervisor.on_report(report)
        except Exception as exc:
            log_event(
                logger,
                "serve.observe_error",
                level=40,
                error=f"{type(exc).__name__}: {exc}",
            )

    def adopt_artifact(self, loaded) -> None:
        """Swap the live scorer to an already-verified artifact (canary
        promotion or rollback).  The swap is one attribute assignment — the
        batcher pins ``self.scorer`` before each batch, so an in-flight
        batch finishes whole on the model it started with.  The drift
        reference resets: a new model defines its own normal."""
        previous = self.scorer.artifact.version if self.scorer else None
        self.scorer = self._make_scorer(loaded)
        self.stats.reloads += 1
        if self.monitor is not None:
            self.monitor.reset()
        log_event(logger, "serve.adopt", version=loaded.version, previous=previous)

    def mark_bad_version(self, version: str) -> None:
        """Exclude a version from hot reload (used after a rollback so the
        poller cannot resurrect the model that was just rolled back)."""
        self._bad_versions.add(version)

    @staticmethod
    def _respond(req: ScoreRequest, response: dict) -> None:
        future = req.future
        if future is not None and not future.done():
            future.set_result(response)

    # -- watchdog --------------------------------------------------------

    async def _watchdog(self) -> None:
        poll = max(0.2, self.config.score_timeout_s / 10)
        while True:
            await asyncio.sleep(poll)
            task = self._batcher_task
            if task is None or not task.done():
                # also recycle a batch wedged *around* the wait_for (e.g. an
                # executor so starved the timeout callback cannot run)
                started = self._batch_started_mono
                if started is not None and (
                    time.monotonic() - started > self.config.score_timeout_s * 2 + 1
                ):
                    log_event(logger, "serve.watchdog_wedged", level=40)
                    task.cancel()
                continue
            exc = task.exception() if not task.cancelled() else None
            self.stats.watchdog_restarts += 1
            log_event(
                logger,
                "serve.watchdog_restart",
                level=40,
                error=f"{type(exc).__name__}: {exc}" if exc else "cancelled",
            )
            self._batch_started_mono = None
            self._batcher_task = asyncio.create_task(self._batcher(), name="serve-batcher")

    # -- hot reload ------------------------------------------------------

    async def _reloader(self) -> None:
        while True:
            await asyncio.sleep(self.config.reload_poll_s)
            try:
                self._maybe_reload()
            except Exception as exc:  # never let the reloader die
                log_event(
                    logger, "serve.reload_error", level=40, error=f"{type(exc).__name__}: {exc}"
                )

    def _maybe_reload(self) -> None:
        current = self.store.current()
        serving = self.scorer.artifact.version if self.scorer else None
        if current is None or current == serving or current in self._bad_versions:
            return
        try:
            loaded = self.store.load(current)
        except ArtifactError as exc:
            self.stats.reload_failures += 1
            self._bad_versions.add(current)
            log_event(
                logger,
                "serve.reload_failed",
                level=40,
                version=current,
                keeping=serving,
                error=str(exc)[:160],
            )
            return
        self.scorer = self._make_scorer(loaded)
        self.stats.reloads += 1
        log_event(logger, "serve.reload", version=loaded.version, previous=serving)


def _peer(writer: asyncio.StreamWriter) -> str:
    try:
        peer = writer.get_extra_info("peername")
        return f"{peer[0]}:{peer[1]}" if peer else "?"
    except Exception:
        return "?"


async def run_service(config: ServeConfig) -> int:
    """Run until SIGTERM/SIGINT; returns the process exit code."""
    service = ScoringService(config)
    try:
        await service.start()
    except ArtifactError as exc:
        log_event(logger, "serve.refused", level=40, code=exc.code, error=str(exc))
        return 2
    # machine-readable announce on stdout (logs go to stderr): lets a
    # supervisor or the bench discover the bound port when --port 0
    print(
        json.dumps(
            {
                "listening": {"host": config.host, "port": service.port},
                "artifact": service.scorer.artifact.version,
            }
        ),
        flush=True,
    )
    service.install_signal_handlers()
    await service.serve_until_stopped()
    print(json.dumps({"stopped": True, "counters": service.stats.to_json()}), flush=True)
    return 0
