"""CLI entry point: ``python -m repro.serve --artifact-root runs/artifact``."""

from __future__ import annotations

import argparse
import asyncio
import sys

from .service import ServeConfig, run_service


def build_parser() -> argparse.ArgumentParser:
    defaults = ServeConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Always-on PerSpectron scoring daemon over a versioned model artifact.",
    )
    parser.add_argument("--artifact-root", default=defaults.artifact_root)
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port, help="0 picks a free port")
    parser.add_argument(
        "--max-queue",
        type=int,
        default=defaults.max_queue,
        help="bounded request queue depth; beyond this, requests are shed with a 503",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=defaults.max_batch,
        help="requests coalesced into one scoring micro-batch",
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=defaults.batch_window_ms,
        help="how long the batcher waits to fill a micro-batch",
    )
    parser.add_argument("--request-timeout", type=float, default=defaults.request_timeout_s)
    parser.add_argument("--score-timeout", type=float, default=defaults.score_timeout_s)
    parser.add_argument("--write-timeout", type=float, default=defaults.write_timeout_s)
    parser.add_argument("--idle-timeout", type=float, default=defaults.idle_timeout_s)
    parser.add_argument("--decode-timeout", type=float, default=defaults.decode_timeout_s)
    parser.add_argument(
        "--reload-poll",
        type=float,
        default=defaults.reload_poll_s,
        help="seconds between artifact CURRENT-pointer polls (0 disables hot reload)",
    )
    parser.add_argument(
        "--quarantine",
        default=None,
        metavar="PATH",
        help="write refused-payload quarantine manifest here",
    )
    parser.add_argument("--batch-size", type=int, default=None, help="rows per scoring chunk")
    parser.add_argument("--drain-timeout", type=float, default=defaults.drain_timeout_s)
    drift = parser.add_argument_group("drift monitoring / online learning")
    drift.add_argument(
        "--drift-window",
        type=int,
        default=defaults.drift_window,
        help="scored traces per drift-evaluation window (0 disables the monitor)",
    )
    drift.add_argument("--drift-min-feedback", type=int, default=defaults.drift_min_feedback)
    drift.add_argument("--drift-psi-threshold", type=float, default=defaults.drift_psi_threshold)
    drift.add_argument("--drift-margin-sigma", type=float, default=defaults.drift_margin_sigma)
    drift.add_argument("--drift-accuracy-floor", type=float, default=defaults.drift_accuracy_floor)
    drift.add_argument("--drift-rollback-floor", type=float, default=defaults.drift_rollback_floor)
    drift.add_argument("--drift-cooldown", type=int, default=defaults.drift_cooldown_windows)
    drift.add_argument(
        "--drift-quarantine-dir",
        default=None,
        metavar="DIR",
        help="write suspect drift windows here as JSON records",
    )
    drift.add_argument(
        "--supervise",
        action="store_true",
        help="enable the self-healing retrain -> canary -> rollback supervisor",
    )
    drift.add_argument("--retrain-mode", choices=("partial", "full"), default=defaults.retrain_mode)
    drift.add_argument("--retrain-passes", type=int, default=defaults.retrain_passes)
    drift.add_argument("--retrain-timeout", type=float, default=defaults.retrain_timeout_s)
    drift.add_argument(
        "--retrain-workers",
        type=int,
        default=defaults.retrain_workers,
        help="member-fit processes for full-mode retrains (bit-identical for any N)",
    )
    drift.add_argument(
        "--retrain-shm",
        choices=("auto", "on", "off"),
        default=defaults.retrain_shm,
        help="pooled-retrain transport (shared-memory attach vs per-worker broadcast)",
    )
    drift.add_argument("--retrain-min-traces", type=int, default=defaults.retrain_min_traces)
    drift.add_argument("--retrain-backoff", type=float, default=defaults.retrain_backoff_s)
    drift.add_argument("--canary-min-traces", type=int, default=defaults.canary_min_traces)
    drift.add_argument("--canary-margin", type=float, default=defaults.canary_margin)
    drift.add_argument("--canary-floor", type=float, default=defaults.canary_floor)
    drift.add_argument("--canary-timeout", type=float, default=defaults.canary_timeout_s)
    drift.add_argument("--feedback-capacity", type=int, default=defaults.feedback_capacity)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServeConfig(
        artifact_root=args.artifact_root,
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        request_timeout_s=args.request_timeout,
        score_timeout_s=args.score_timeout,
        write_timeout_s=args.write_timeout,
        idle_timeout_s=args.idle_timeout,
        decode_timeout_s=args.decode_timeout,
        reload_poll_s=args.reload_poll,
        quarantine_path=args.quarantine,
        batch_size=args.batch_size,
        drain_timeout_s=args.drain_timeout,
        drift_window=args.drift_window,
        drift_min_feedback=args.drift_min_feedback,
        drift_psi_threshold=args.drift_psi_threshold,
        drift_margin_sigma=args.drift_margin_sigma,
        drift_accuracy_floor=args.drift_accuracy_floor,
        drift_rollback_floor=args.drift_rollback_floor,
        drift_cooldown_windows=args.drift_cooldown,
        drift_quarantine_dir=args.drift_quarantine_dir,
        supervise=args.supervise,
        retrain_mode=args.retrain_mode,
        retrain_passes=args.retrain_passes,
        retrain_timeout_s=args.retrain_timeout,
        retrain_workers=args.retrain_workers,
        retrain_shm=args.retrain_shm,
        retrain_min_traces=args.retrain_min_traces,
        retrain_backoff_s=args.retrain_backoff,
        canary_min_traces=args.canary_min_traces,
        canary_margin=args.canary_margin,
        canary_floor=args.canary_floor,
        canary_timeout_s=args.canary_timeout,
        feedback_capacity=args.feedback_capacity,
    )
    return asyncio.run(run_service(config))


if __name__ == "__main__":
    sys.exit(main())
