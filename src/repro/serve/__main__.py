"""CLI entry point: ``python -m repro.serve --artifact-root runs/artifact``."""

from __future__ import annotations

import argparse
import asyncio
import sys

from .service import ServeConfig, run_service


def build_parser() -> argparse.ArgumentParser:
    defaults = ServeConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Always-on PerSpectron scoring daemon over a versioned model artifact.",
    )
    parser.add_argument("--artifact-root", default=defaults.artifact_root)
    parser.add_argument("--host", default=defaults.host)
    parser.add_argument("--port", type=int, default=defaults.port, help="0 picks a free port")
    parser.add_argument(
        "--max-queue",
        type=int,
        default=defaults.max_queue,
        help="bounded request queue depth; beyond this, requests are shed with a 503",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=defaults.max_batch,
        help="requests coalesced into one scoring micro-batch",
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=defaults.batch_window_ms,
        help="how long the batcher waits to fill a micro-batch",
    )
    parser.add_argument("--request-timeout", type=float, default=defaults.request_timeout_s)
    parser.add_argument("--score-timeout", type=float, default=defaults.score_timeout_s)
    parser.add_argument("--write-timeout", type=float, default=defaults.write_timeout_s)
    parser.add_argument("--idle-timeout", type=float, default=defaults.idle_timeout_s)
    parser.add_argument("--decode-timeout", type=float, default=defaults.decode_timeout_s)
    parser.add_argument(
        "--reload-poll",
        type=float,
        default=defaults.reload_poll_s,
        help="seconds between artifact CURRENT-pointer polls (0 disables hot reload)",
    )
    parser.add_argument(
        "--quarantine",
        default=None,
        metavar="PATH",
        help="write refused-payload quarantine manifest here",
    )
    parser.add_argument("--batch-size", type=int, default=None, help="rows per scoring chunk")
    parser.add_argument("--drain-timeout", type=float, default=defaults.drain_timeout_s)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServeConfig(
        artifact_root=args.artifact_root,
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        max_batch=args.max_batch,
        batch_window_ms=args.batch_window_ms,
        request_timeout_s=args.request_timeout,
        score_timeout_s=args.score_timeout,
        write_timeout_s=args.write_timeout,
        idle_timeout_s=args.idle_timeout,
        decode_timeout_s=args.decode_timeout,
        reload_poll_s=args.reload_poll,
        quarantine_path=args.quarantine,
        batch_size=args.batch_size,
        drain_timeout_s=args.drain_timeout,
    )
    return asyncio.run(run_service(config))


if __name__ == "__main__":
    sys.exit(main())
