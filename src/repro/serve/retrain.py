"""Retrain subprocess: fold labeled feedback into a **candidate** artifact.

Run by the :class:`~repro.serve.supervisor.RetrainSupervisor` as::

    python -m repro.serve.retrain --artifact-root <store> --base <version> \
        --data feedback.npz --mode partial --passes 2 --seed 3

The process is deliberately isolated from the daemon: it loads the base
artifact fresh from disk, trains on the feedback batch, recomputes margin
scales on that batch, and publishes the result with ``set_current=False`` —
the live ``CURRENT`` pointer is never touched here.  The only contract with
the parent is one JSON line on stdout, ``{"candidate": "<version>"}``; any
crash, timeout, or nonzero exit costs the supervisor a backoff interval and
nothing else.

``--mode partial`` runs ``--passes`` incremental :func:`ensemble_partial_fit`
passes starting from the base weights (the streaming path the bit-identity
property test pins); ``--mode full`` refits every member from scratch on the
feedback batch through :func:`~repro.model.train_ensemble` — which means
full retrains get the same ``--train-workers`` / ``--train-shm`` transport
as the batch pipeline, and a supervisor-driven production retrain stops
re-pickling the feedback matrix per worker.  Member fits are pure functions
of ``(seed, data)``, so the pooled/shm retrain is bit-identical to the
serial one (pinned by the serve-drift tests).  Partial mode always trains
in-process: it *continues from the base weights*, which the from-scratch
pool contract does not cover, and a few incremental passes are cheap.

The feedback ``.npz`` carries ``X`` (stacked interval rows), ``groups``
(per-row trace id), and ``labels`` (per-trace ±1); per-row labels are the
trace label broadcast over its rows, exactly how the batch trainer labels
interval samples.

``--data`` may also name a trace *corpus directory*: it is then assembled
through the same two cache tiers as the batch pipeline (``--cache-dir`` /
``--dataset-cache-dir``), so a supervisor full retrain over a captured
corpus stops re-paying decode + assembly on every trigger — a warm corpus
arrives as one memory-mapped load.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from ..errors import ReproError, RetrainFailed
from ..features import assemble_corpus
from ..model import ArtifactStore, ensemble_partial_fit, margin_scales, train_ensemble
from ..model.train_pool import SHM_CHOICES
from ..telemetry import get_logger, log_event

logger = get_logger("repro.serve.retrain")

RETRAIN_MODES = ("partial", "full")


def _pool_kwargs(models) -> tuple[dict, list[int]] | None:
    """(model_kwargs, seeds) to rebuild ``models`` from scratch via
    :func:`train_ensemble`, or None when the ensemble cannot be expressed
    that way (per-member config drift, or salts that do not derive from the
    stored seed — possible for hand-edited artifacts).  None sends the full
    retrain down the in-process loop instead of silently changing models."""
    first = models[0]
    kwargs = {
        "n_tables": first.n_tables,
        "table_bits": first.table_bits,
        "n_bins": first.n_bins,
        "theta": first.theta,
        "weight_clamp": first.weight_clamp,
    }
    for m in models:
        if (
            m.n_features != first.n_features
            or any(getattr(m, k) != v for k, v in kwargs.items())
        ):
            return None
        # the pool reconstructs members from seed alone; that is only valid
        # when the stored salts are exactly what the seed regenerates
        fresh = type(m)(m.n_features, seed=m.seed, **kwargs)
        if not np.array_equal(fresh._salts, m._salts):
            return None
    return kwargs, [m.seed for m in models]


def load_feedback(path) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(X, groups, labels) from a supervisor feedback dump, validated."""
    try:
        with np.load(path) as data:
            X = np.asarray(data["X"], dtype=np.float64)
            groups = np.asarray(data["groups"], dtype=np.int64)
            labels = np.asarray(data["labels"], dtype=np.int64)
    except (OSError, KeyError, ValueError) as exc:
        raise RetrainFailed(f"cannot load feedback data from {path}: {exc}") from exc
    if X.ndim != 2 or X.shape[0] == 0:
        raise RetrainFailed(f"feedback matrix has shape {X.shape}")
    if groups.shape != (X.shape[0],):
        raise RetrainFailed(
            f"groups shape {groups.shape} does not match {X.shape[0]} rows"
        )
    n_traces = int(groups.max()) + 1 if groups.size else 0
    if labels.shape != (n_traces,):
        raise RetrainFailed(
            f"labels shape {labels.shape} does not match {n_traces} traces"
        )
    if set(np.unique(labels)) - {-1, 1}:
        raise RetrainFailed("feedback labels must be -1 or +1")
    return X, groups, labels


def load_corpus_feedback(
    path, *, cache_dir=None, dataset_cache_dir=None, workers: int = 1
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(X, groups, labels) assembled from a trace corpus directory through
    both cache tiers; labels come from the decoded trace metadata."""
    try:
        assembly = assemble_corpus(
            path,
            workers=workers,
            cache_root=cache_dir,
            dataset_cache_root=dataset_cache_dir,
        )
    except ReproError as exc:
        raise RetrainFailed(f"cannot assemble corpus {path}: {exc}") from exc
    dataset = assembly.dataset
    log_event(
        logger,
        "retrain.corpus_assembled",
        corpus=str(path),
        traces=len(dataset.traces),
        rows=dataset.n_samples,
        dataset_cache_hit=bool((assembly.dataset_cache or {}).get("hit")),
    )
    return (
        np.asarray(dataset.X, dtype=np.float64),
        np.asarray(dataset.groups, dtype=np.int64),
        dataset.trace_labels(),
    )


def retrain(
    artifact_root: str,
    base: str,
    data_path: str,
    *,
    mode: str = "partial",
    passes: int = 2,
    seed: int = 0,
    workers: int = 1,
    shm: str = "auto",
    cache_dir=None,
    dataset_cache_dir=None,
) -> str:
    """Train a candidate from ``base`` + feedback; returns its version.

    ``workers``/``shm`` select the :func:`train_ensemble` transport for
    ``mode="full"`` — bit-identical for every combination; partial mode
    ignores them (it continues in-process from the base weights).
    ``data_path`` is either a feedback ``.npz`` or a corpus directory
    (assembled through the decode / dataset cache tiers).
    """
    if mode not in RETRAIN_MODES:
        raise RetrainFailed(f"unknown retrain mode {mode!r}; expected {RETRAIN_MODES}")
    if passes < 1:
        raise RetrainFailed(f"passes must be >= 1, got {passes}")
    if shm not in SHM_CHOICES:
        raise RetrainFailed(f"unknown shm mode {shm!r}; expected {SHM_CHOICES}")
    store = ArtifactStore(artifact_root)
    loaded = store.load(base)
    if Path(data_path).is_dir():
        X, groups, labels = load_corpus_feedback(
            data_path,
            cache_dir=cache_dir,
            dataset_cache_dir=dataset_cache_dir,
            workers=max(1, workers),
        )
    else:
        X, groups, labels = load_feedback(data_path)
    if X.shape[1] != loaded.n_features:
        raise RetrainFailed(
            f"feedback has {X.shape[1]} features, base {base} expects {loaded.n_features}"
        )
    # models train in the same normalized space they score in
    Z = loaded.normalizer.transform(X)
    y_rows = labels[groups]

    models = loaded.models
    if mode == "full":
        pool = _pool_kwargs(models)
        if pool is not None:
            model_kwargs, seeds = pool
            trained = train_ensemble(
                Z,
                y_rows,
                n_features=loaded.n_features,
                seeds=seeds,
                model_kwargs=model_kwargs,
                # one shared fit seed, matching the historical in-process loop
                fit_kwargs={"epochs": max(passes, 5), "seed": seed},
                workers=workers,
                shm=shm,
            )
            for model, member in zip(models, trained):
                model.weights = member.model.weights
        else:
            log_event(logger, "retrain.pool_unavailable", base=base)
            for model in models:
                model.weights[:] = 0
            for model in models:
                model.fit(Z, y_rows, epochs=max(passes, 5), seed=seed)
    else:
        for p in range(passes):
            ensemble_partial_fit(models, Z, y_rows, seed=seed + 1000 * p)

    scales = margin_scales(models, Z)
    result = store.publish(
        models,
        loaded.normalizer,
        scales,
        meta={
            "retrained_from": base,
            "retrain_mode": mode,
            "retrain_passes": passes,
            "feedback_traces": int(labels.shape[0]),
            "feedback_rows": int(X.shape[0]),
        },
        set_current=False,
    )
    log_event(
        logger,
        "retrain.candidate",
        candidate=result.version,
        base=base,
        mode=mode,
        traces=int(labels.shape[0]),
    )
    return result.version


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.retrain",
        description="Fold a labeled feedback batch into a candidate artifact.",
    )
    parser.add_argument("--artifact-root", required=True)
    parser.add_argument("--base", required=True, help="artifact version to start from")
    parser.add_argument(
        "--data",
        required=True,
        help="feedback .npz (X, groups, labels) or a trace corpus directory",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="per-trace decode cache when --data is a corpus directory",
    )
    parser.add_argument(
        "--dataset-cache-dir",
        default=None,
        metavar="DIR",
        help="assembled-dataset cache when --data is a corpus directory "
        "(warm retrains skip ingest entirely)",
    )
    parser.add_argument("--mode", choices=RETRAIN_MODES, default="partial")
    parser.add_argument("--passes", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--train-workers",
        type=int,
        default=1,
        help="member-fit processes for --mode full (bit-identical for any N)",
    )
    parser.add_argument(
        "--train-shm",
        choices=SHM_CHOICES,
        default="auto",
        help="pooled-training transport for --mode full (see repro.pipeline)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        candidate = retrain(
            args.artifact_root,
            args.base,
            args.data,
            mode=args.mode,
            passes=args.passes,
            seed=args.seed,
            workers=args.train_workers,
            shm=args.train_shm,
            cache_dir=args.cache_dir,
            dataset_cache_dir=args.dataset_cache_dir,
        )
    except ReproError as exc:
        print(json.dumps({"error": exc.describe()}), file=sys.stderr, flush=True)
        return 1
    print(json.dumps({"candidate": candidate}), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
