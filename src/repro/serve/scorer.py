"""Synchronous request decode + scoring core for the serving daemon.

This module is asyncio-free: the daemon calls :meth:`RequestScorer.score_batch`
from an executor thread so decoding (which may hit the salvage parser) never
blocks the event loop.  Every per-request failure is mapped to a structured
response document; only process-level bugs may raise out of here.

Request line (newline-delimited JSON)::

    {"id": "req-1", "payload_b64": "<base64 trace-cache blob>"}
    {"id": "req-2", "rows": [[...], [...]]}

``payload_b64`` goes through the full versioned codec — including the
salvage decoder — so the daemon accepts the same damaged captures the batch
pipeline does; undecodable payloads are answered with the codec's typed
error and recorded in a quarantine manifest.  ``rows`` is the pre-decoded
fast path for callers that already hold the interval matrix.

Response line::

    {"id": "req-1", "ok": true, "status": 200, "verdict": 1, "margin": ...,
     "n_intervals": 6, "decode_mode": "salvage", "degraded": true,
     "artifact": "v0001-3fa9c1d2"}
    {"id": "req-2", "ok": false, "status": 400,
     "error": {"code": "bad_request", "type": "BadRequest", "message": "..."}}
"""

from __future__ import annotations

import base64
import binascii
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import BadRequest, ReproError, TraceDecodeError
from ..ingest.quarantine import QuarantineManifest
from ..model.artifact import LoadedArtifact
from ..sim.trace import decode_trace
from ..telemetry import get_logger, log_event

logger = get_logger("repro.serve.scorer")

#: request payload cap: a line larger than this is refused before decode
MAX_PAYLOAD_BYTES = 64 << 20


@dataclass
class ScoreRequest:
    """One enqueued scoring request, parsed off the wire."""

    req_id: str
    raw: dict
    received_mono: float
    deadline_mono: float
    #: set by the service layer; resolved with the response document
    future: object = None
    #: filled during scoring
    response: dict | None = None
    #: labeled-feedback fields, filled during scoring when the request
    #: carries a ``label``: the decoded rows and family feed the drift
    #: monitor and the retrain supervisor's feedback buffer
    label: int | None = None
    family: str | None = None
    rows: np.ndarray | None = None

    def expired(self, now: float | None = None) -> bool:
        return (now if now is not None else time.monotonic()) > self.deadline_mono


def parse_request_line(line: bytes) -> dict:
    """Parse one NDJSON request line.  Raises :class:`BadRequest`."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise BadRequest(f"request line is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise BadRequest(f"request must be a JSON object, got {type(obj).__name__}")
    return obj


def parse_feedback(obj: dict) -> tuple[int | None, str | None]:
    """``(label, family)`` from a request document; raises :class:`BadRequest`.

    ``label`` is the ground-truth trace verdict (+1 attack / -1 benign)
    supplied by an operator or the replay harness.  Booleans are rejected
    explicitly: ``bool`` is an ``int`` subclass, so without the guard
    ``True in (-1, 1)`` would quietly accept ``true`` as an attack label.
    """
    label = obj.get("label")
    family = obj.get("family")
    if family is not None and not isinstance(family, str):
        raise BadRequest(f"family must be a string, got {type(family).__name__}")
    if label is None:
        return None, family
    if isinstance(label, bool) or not isinstance(label, int) or label not in (-1, 1):
        raise BadRequest(f"label must be -1 or +1, got {label!r}")
    return int(label), family


def error_response(req_id: str, exc: BaseException) -> dict:
    """Structured error document for any failure, typed or not."""
    if isinstance(exc, ReproError):
        desc = exc.describe()
    else:  # a bug surfaced per-request: still answer, loudly typed as such
        desc = {"code": "internal", "type": type(exc).__name__, "message": str(exc)}
    status = int(desc.pop("status", 500))
    if isinstance(exc, TraceDecodeError):
        status = 422  # unprocessable payload: decode-level refusal
    return {"id": req_id, "ok": False, "status": status, "error": desc}


class RequestScorer:
    """Decodes request payloads and scores them against one loaded artifact.

    Instances are cheap and immutable-ish: a hot reload builds a fresh
    scorer around the new artifact and swaps the reference.  The quarantine
    manifest is shared across swaps so the record of refused payloads
    survives reloads.
    """

    def __init__(
        self,
        artifact: LoadedArtifact,
        *,
        quarantine: QuarantineManifest | None = None,
        quarantine_path=None,
        decode_timeout_s: float = 10.0,
        batch_size: int | None = None,
    ):
        self.artifact = artifact
        self.quarantine = quarantine if quarantine is not None else QuarantineManifest(
            root="<serve>"
        )
        self.quarantine_path = quarantine_path
        self.decode_timeout_s = decode_timeout_s
        self.batch_size = batch_size
        self._quarantine_lock = threading.Lock()

    # -- decode ----------------------------------------------------------

    def _rows_from_request(self, req: ScoreRequest) -> tuple[np.ndarray, dict]:
        """(rows, decode_info) for one request.  Raises typed errors only."""
        obj = req.raw
        if "payload_b64" in obj:
            payload = obj["payload_b64"]
            if not isinstance(payload, str):
                raise BadRequest("payload_b64 must be a base64 string")
            if len(payload) > MAX_PAYLOAD_BYTES:
                raise BadRequest(
                    f"payload_b64 is {len(payload)} bytes, cap is {MAX_PAYLOAD_BYTES}"
                )
            try:
                blob = base64.b64decode(payload, validate=True)
            except (binascii.Error, ValueError) as exc:
                raise BadRequest(f"payload_b64 is not valid base64: {exc}") from exc
            deadline = time.monotonic() + min(
                self.decode_timeout_s, max(req.deadline_mono - time.monotonic(), 0.05)
            )
            trace, report = decode_trace(
                blob, path=f"request:{req.req_id}", deadline=deadline
            )
            if req.family is None:
                req.family = trace.attack_class or trace.program
            return np.asarray(trace.rows, dtype=np.float64), {
                "decode_mode": report.mode,
                "degraded": report.degraded,
            }
        if "rows" in obj:
            try:
                rows = np.asarray(obj["rows"], dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise BadRequest(f"rows is not a numeric matrix: {exc}") from exc
            if rows.ndim != 2 or rows.shape[0] == 0:
                raise BadRequest(f"rows must be a non-empty 2-D matrix, got shape {rows.shape}")
            return rows, {"decode_mode": "rows", "degraded": False}
        raise BadRequest("request needs a payload_b64 or rows field")

    def _check_width(self, rows: np.ndarray) -> None:
        if rows.shape[1] != self.artifact.n_features:
            raise BadRequest(
                f"payload has {rows.shape[1]} features, artifact "
                f"{self.artifact.version} expects {self.artifact.n_features}"
            )

    def _record_quarantine(self, req: ScoreRequest, exc: BaseException) -> None:
        with self._quarantine_lock:
            entry = self.quarantine.add(f"request:{req.req_id}", exc)
            if self.quarantine_path is not None:
                try:
                    self.quarantine.write(self.quarantine_path)
                except OSError as write_exc:
                    log_event(
                        logger,
                        "serve.quarantine_write_failed",
                        error=type(write_exc).__name__,
                    )
        log_event(logger, "serve.quarantine", request=req.req_id, code=entry.code)

    # -- scoring ---------------------------------------------------------

    def score_batch(self, batch: list[ScoreRequest]) -> list[dict]:
        """Decode and score a micro-batch; returns one response per request.

        Failed requests get structured error documents; the survivors are
        stacked into one matrix and scored in a single
        ``ensemble_margins``/``trace_verdicts`` pass with the artifact's
        pinned margin scales, so coalescing never changes any verdict.
        """
        responses: list[dict | None] = [None] * len(batch)
        live: list[tuple[int, np.ndarray, dict]] = []
        for i, req in enumerate(batch):
            try:
                req.label, req.family = parse_feedback(req.raw)
                rows, info = self._rows_from_request(req)
                self._check_width(rows)
            except TraceDecodeError as exc:
                self._record_quarantine(req, exc)
                responses[i] = error_response(req.req_id, exc)
                continue
            except ReproError as exc:
                responses[i] = error_response(req.req_id, exc)
                continue
            if req.label is not None:
                req.rows = rows
            live.append((i, rows, info))

        if live:
            stacked = np.vstack([rows for _, rows, _ in live])
            groups = np.concatenate(
                [
                    np.full(rows.shape[0], k, dtype=np.int64)
                    for k, (_, rows, _) in enumerate(live)
                ]
            )
            margins, verdicts = self.artifact.score_traces(
                stacked, groups, len(live), batch_size=self.batch_size
            )
            sums = np.bincount(groups, weights=margins, minlength=len(live))
            counts = np.bincount(groups, minlength=len(live))
            for k, (i, rows, info) in enumerate(live):
                req = batch[i]
                responses[i] = {
                    "id": req.req_id,
                    "ok": True,
                    "status": 200,
                    "verdict": int(verdicts[k]),
                    "margin": float(sums[k] / counts[k]),
                    "n_intervals": int(rows.shape[0]),
                    "artifact": self.artifact.version,
                    **info,
                }
                if req.label is not None:
                    # acknowledged feedback: the caller can tell the label
                    # was accepted into the drift loop, and which family the
                    # trace resolved to
                    responses[i]["feedback"] = True
                    if req.family is not None:
                        responses[i]["family"] = req.family
        assert all(r is not None for r in responses)
        return responses


@dataclass
class ScorerStats:
    """Mutable request counters shared by the service layer; snapshot with
    :meth:`to_json` for ``/metricsz`` and the shutdown summary."""

    received: int = 0
    answered: int = 0
    ok: int = 0
    errors: int = 0
    shed: int = 0
    expired: int = 0
    quarantined: int = 0
    score_timeouts: int = 0
    score_errors: int = 0
    watchdog_restarts: int = 0
    reloads: int = 0
    reload_failures: int = 0
    slow_client_drops: int = 0
    bad_lines: int = 0
    batches: int = 0
    http_probes: int = 0
    #: error-code histogram across all non-ok responses
    error_codes: dict = field(default_factory=dict)

    def count_error(self, code: str) -> None:
        self.errors += 1
        self.error_codes[code] = self.error_codes.get(code, 0) + 1

    def to_json(self) -> dict:
        return {
            "received": self.received,
            "answered": self.answered,
            "ok": self.ok,
            "errors": self.errors,
            "shed": self.shed,
            "expired": self.expired,
            "quarantined": self.quarantined,
            "score_timeouts": self.score_timeouts,
            "score_errors": self.score_errors,
            "watchdog_restarts": self.watchdog_restarts,
            "reloads": self.reloads,
            "reload_failures": self.reload_failures,
            "slow_client_drops": self.slow_client_drops,
            "bad_lines": self.bad_lines,
            "batches": self.batches,
            "http_probes": self.http_probes,
            "error_codes": dict(sorted(self.error_codes.items())),
        }
