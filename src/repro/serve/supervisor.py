"""Self-healing retrain → canary → promote/rollback supervisor.

The drift monitor says *something changed*; this module decides what to do
about it without ever endangering the live model:

1. **Retrain** — labeled feedback traces (a bounded ring buffer fed by the
   scoring path) are snapshotted to an ``.npz`` and handed to a *subprocess*
   (``python -m repro.serve.retrain``) under a wall-clock timeout.  A crash,
   a hang, or garbage output costs one backoff interval and nothing else:
   the daemon's memory is never shared with the trainer.
2. **Canary** — a successful retrain publishes a **candidate** artifact with
   the ``CURRENT`` pointer untouched.  The supervisor shadow-scores labeled
   traffic arriving during the canary window against both the candidate and
   the live model; the candidate is promoted (one atomic pointer swap +
   in-process adoption) only if its accuracy clears the live model's minus a
   tolerance *and* an absolute floor.  Otherwise it is discarded — the
   version stays on disk for forensics but nothing ever serves it.
3. **Rollback** — when the drift monitor reports the live model is actively
   bad (rolling accuracy under the rollback floor), the supervisor loads the
   newest *other* version via ``load_with_fallback(skip=...)``, promotes it,
   and marks the bad version so the hot-reload poller will not resurrect it.

Every failure path (subprocess crash, timeout, unloadable candidate, canary
rejection) leaves the live model untouched and arms an exponential backoff,
so a persistently broken trainer degrades to "the loop stops retraining",
never to "the loop takes serving down".
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import shutil
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import ArtifactError, RetrainFailed
from ..model.artifact import LoadedArtifact
from ..telemetry import get_logger, log_event

logger = get_logger("repro.serve.supervisor")


def _now_iso() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S%z")


@dataclass
class FeedbackItem:
    """One labeled trace captured off the scoring path."""

    rows: np.ndarray
    label: int
    family: str | None = None


class FeedbackBuffer:
    """Bounded ring of labeled traces (oldest evicted first)."""

    def __init__(self, capacity: int):
        self._items: deque[FeedbackItem] = deque(maxlen=max(1, int(capacity)))

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: FeedbackItem) -> None:
        self._items.append(item)

    def snapshot(self) -> list[FeedbackItem]:
        return list(self._items)


def write_feedback_npz(path, items: list[FeedbackItem]) -> None:
    """Serialize labeled traces for the retrain subprocess: stacked interval
    rows, a per-row trace id, and a per-trace label."""
    X = np.vstack([np.asarray(it.rows, dtype=np.float64) for it in items])
    groups = np.concatenate(
        [np.full(np.asarray(it.rows).shape[0], k, dtype=np.int64) for k, it in enumerate(items)]
    )
    labels = np.asarray([it.label for it in items], dtype=np.int64)
    np.savez_compressed(path, X=X, groups=groups, labels=labels)


def shadow_accuracies(
    candidate: LoadedArtifact, live: LoadedArtifact, items: list[FeedbackItem]
) -> tuple[float, float]:
    """(candidate, live) trace-level accuracy over the same labeled traces.
    Runs in an executor thread — pure numpy, no shared mutable state."""
    X = np.vstack([it.rows for it in items])
    groups = np.concatenate(
        [np.full(it.rows.shape[0], k, dtype=np.int64) for k, it in enumerate(items)]
    )
    y = np.asarray([it.label for it in items], dtype=np.int64)

    def accuracy(artifact: LoadedArtifact) -> float:
        _, verdicts = artifact.score_traces(X, groups, len(items))
        return float((verdicts == y).mean())

    return accuracy(candidate), accuracy(live)


@dataclass
class SupervisorStats:
    """Counters + timestamps surfaced on ``/metricsz``."""

    state: str = "idle"
    candidate: str | None = None
    feedback_traces: int = 0
    retrains_started: int = 0
    retrains_succeeded: int = 0
    retrains_failed: int = 0
    retrain_timeouts: int = 0
    canaries_started: int = 0
    canary_rejections: int = 0
    promotions: int = 0
    rollbacks: int = 0
    consecutive_failures: int = 0
    last_retrain_at: str | None = None
    last_promotion_at: str | None = None
    last_rollback_at: str | None = None
    last_error: str | None = None

    def to_json(self) -> dict:
        return {
            "state": self.state,
            "candidate": self.candidate,
            "feedback_traces": self.feedback_traces,
            "retrains_started": self.retrains_started,
            "retrains_succeeded": self.retrains_succeeded,
            "retrains_failed": self.retrains_failed,
            "retrain_timeouts": self.retrain_timeouts,
            "canaries_started": self.canaries_started,
            "canary_rejections": self.canary_rejections,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "consecutive_failures": self.consecutive_failures,
            "last_retrain_at": self.last_retrain_at,
            "last_promotion_at": self.last_promotion_at,
            "last_rollback_at": self.last_rollback_at,
            "last_error": self.last_error,
        }


@dataclass
class _Canary:
    """An in-flight candidate under evaluation."""

    loaded: LoadedArtifact
    base: str
    started_mono: float
    items: list[FeedbackItem] = field(default_factory=list)


class RetrainSupervisor:
    """Owns the retrain/canary/rollback state machine for one service.

    All entry points (:meth:`add_feedback`, :meth:`on_report`) are called
    from the daemon's event-loop thread, and :meth:`run` is an event-loop
    task, so the state machine needs no locks.  Anything heavier than
    bookkeeping — subprocess waits, artifact loads, shadow scoring — is
    awaited or pushed to the executor so the loop never blocks.
    """

    def __init__(self, service, config):
        self.service = service
        self.config = config
        self.stats = SupervisorStats()
        self.feedback = FeedbackBuffer(config.feedback_capacity)
        self._wake = asyncio.Event()
        self._pending_retrain = False
        self._pending_rollback = False
        self._failures = 0
        self._backoff_until_mono = 0.0
        self._canary: _Canary | None = None
        # candidate versions that never earned promotion (rejected or
        # dropped): they live on disk for forensics, but a rollback must
        # never adopt one — "newest other version" is not "trusted version"
        self._distrusted: set[str] = set()

    # -- event-loop entry points ----------------------------------------

    def add_feedback(self, rows, label: int, family: str | None) -> None:
        item = FeedbackItem(
            rows=np.asarray(rows, dtype=np.float64), label=int(label), family=family
        )
        self.feedback.add(item)
        self.stats.feedback_traces += 1
        if self._canary is not None:
            self._canary.items.append(item)
        self._wake.set()

    def on_report(self, report) -> None:
        """React to a completed drift window (a :class:`~repro.drift.DriftReport`)."""
        if report.rollback:
            self._pending_rollback = True
        elif report.drifted:
            self._pending_retrain = True
        if self._pending_rollback or self._pending_retrain:
            self._wake.set()

    def backoff_remaining(self) -> float:
        return max(0.0, self._backoff_until_mono - time.monotonic())

    # -- main loop -------------------------------------------------------

    async def run(self) -> None:
        """Process wake-ups until cancelled.  The short poll timeout doubles
        as the canary-timeout and backoff-expiry clock."""
        while True:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.25)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            try:
                await self._step()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # a supervisor bug must not kill the task
                self.stats.last_error = f"{type(exc).__name__}: {exc}"
                log_event(
                    logger,
                    "supervisor.step_error",
                    level=logging.ERROR,
                    error=self.stats.last_error,
                )

    async def _step(self) -> None:
        if self._pending_rollback:
            # rollback preempts everything: an in-flight canary was trained
            # by (or evaluated against) a model we no longer trust
            self._pending_rollback = False
            self._pending_retrain = False
            self._drop_canary(reason="preempted by rollback")
            await self._rollback()
            return
        if self._canary is not None:
            await self._maybe_gate_canary()
            return
        if self._pending_retrain:
            if time.monotonic() < self._backoff_until_mono:
                return
            if len(self.feedback) < self.config.retrain_min_traces:
                return  # stays pending until enough labeled traffic arrives
            self._pending_retrain = False
            await self._retrain()

    # -- retrain ---------------------------------------------------------

    def _retrain_argv(self, data_path, base: str) -> list[str]:
        """Command line for the retrain subprocess.  A method so failure-mode
        tests can substitute a crashing / hanging trainer."""
        return [
            sys.executable,
            "-m",
            "repro.serve.retrain",
            "--artifact-root",
            str(self.config.artifact_root),
            "--base",
            base,
            "--data",
            str(data_path),
            "--mode",
            self.config.retrain_mode,
            "--passes",
            str(self.config.retrain_passes),
            "--seed",
            str(self.stats.retrains_started),
            "--train-workers",
            str(self.config.retrain_workers),
            "--train-shm",
            self.config.retrain_shm,
        ]

    @staticmethod
    def _retrain_env() -> dict:
        """Subprocess environment with ``repro`` importable even when the
        daemon itself was started from a source checkout."""
        import repro

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
        return env

    async def _retrain(self) -> None:
        base = self.service.scorer.artifact.version
        snapshot = self.feedback.snapshot()
        self.stats.retrains_started += 1
        self.stats.state = "retraining"
        log_event(
            logger,
            "supervisor.retrain_start",
            base=base,
            feedback_traces=len(snapshot),
            mode=self.config.retrain_mode,
        )
        tmpdir = tempfile.mkdtemp(prefix="repro-retrain-")
        try:
            data_path = Path(tmpdir) / "feedback.npz"
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, write_feedback_npz, data_path, snapshot)
            candidate = await self._run_retrain_subprocess(data_path, base)
            loaded = await loop.run_in_executor(None, self.service.store.load, candidate)
        except RetrainFailed as exc:
            self._on_retrain_failure(exc)
            return
        except ArtifactError as exc:
            self._on_retrain_failure(
                RetrainFailed(f"candidate failed verification: {exc}")
            )
            return
        finally:
            shutil.rmtree(tmpdir, ignore_errors=True)
        self._failures = 0
        self.stats.consecutive_failures = 0
        self.stats.retrains_succeeded += 1
        self.stats.last_retrain_at = _now_iso()
        self._canary = _Canary(loaded=loaded, base=base, started_mono=time.monotonic())
        self.stats.canaries_started += 1
        self.stats.state = "canary"
        self.stats.candidate = loaded.version
        log_event(
            logger,
            "supervisor.canary_start",
            candidate=loaded.version,
            base=base,
            min_traces=self.config.canary_min_traces,
        )

    async def _run_retrain_subprocess(self, data_path, base: str) -> str:
        """Run the trainer under a hard timeout; returns the candidate
        version.  Every failure becomes :class:`RetrainFailed`."""
        argv = self._retrain_argv(data_path, base)
        try:
            proc = await asyncio.create_subprocess_exec(
                *argv,
                stdout=asyncio.subprocess.PIPE,
                stderr=asyncio.subprocess.PIPE,
                env=self._retrain_env(),
            )
        except OSError as exc:
            raise RetrainFailed(f"cannot launch retrain subprocess: {exc}") from exc
        try:
            out, err = await asyncio.wait_for(
                proc.communicate(), timeout=self.config.retrain_timeout_s
            )
        except asyncio.TimeoutError:
            proc.kill()
            await proc.communicate()
            self.stats.retrain_timeouts += 1
            raise RetrainFailed(
                f"retrain exceeded {self.config.retrain_timeout_s}s; killed"
            ) from None
        if proc.returncode != 0:
            tail = err.decode(errors="replace").strip()[-300:]
            raise RetrainFailed(f"retrain exited {proc.returncode}: {tail or 'no stderr'}")
        candidate = None
        for line in out.decode(errors="replace").splitlines():
            line = line.strip()
            if line.startswith("{"):
                try:
                    candidate = json.loads(line).get("candidate")
                except ValueError:
                    continue
        if not candidate or not isinstance(candidate, str):
            raise RetrainFailed("retrain produced no candidate version on stdout")
        return candidate

    def _on_retrain_failure(self, exc: RetrainFailed) -> None:
        self._failures += 1
        self.stats.retrains_failed += 1
        self.stats.consecutive_failures = self._failures
        self.stats.last_error = str(exc)
        backoff = min(
            self.config.retrain_backoff_s * (2 ** (self._failures - 1)),
            self.config.retrain_backoff_max_s,
        )
        self._backoff_until_mono = time.monotonic() + backoff
        self._pending_retrain = True  # retry once the backoff expires
        self.stats.state = "idle"
        self.stats.candidate = None
        log_event(
            logger,
            "supervisor.retrain_failed",
            level=logging.WARNING,
            error=str(exc)[:200],
            consecutive=self._failures,
            backoff_s=f"{backoff:.1f}",
        )

    # -- canary ----------------------------------------------------------

    async def _maybe_gate_canary(self) -> None:
        canary = self._canary
        assert canary is not None
        elapsed = time.monotonic() - canary.started_mono
        enough = len(canary.items) >= self.config.canary_min_traces
        if not enough and elapsed < self.config.canary_timeout_s:
            return
        if not canary.items:
            self._reject_canary(canary, "no labeled canary traffic before timeout")
            return
        live = self.service.scorer.artifact
        loop = asyncio.get_running_loop()
        cand_acc, live_acc = await loop.run_in_executor(
            None, shadow_accuracies, canary.loaded, live, list(canary.items)
        )
        passed = (
            cand_acc >= live_acc - self.config.canary_margin
            and cand_acc >= self.config.canary_floor
        )
        log_event(
            logger,
            "supervisor.canary_gate",
            candidate=canary.loaded.version,
            candidate_accuracy=f"{cand_acc:.3f}",
            live_accuracy=f"{live_acc:.3f}",
            traces=len(canary.items),
            passed=passed,
        )
        if not passed:
            self._reject_canary(
                canary,
                f"candidate accuracy {cand_acc:.3f} vs live {live_acc:.3f} "
                f"(margin {self.config.canary_margin}, floor {self.config.canary_floor})",
            )
            return
        await loop.run_in_executor(None, self.service.store.promote, canary.loaded.version)
        self.service.adopt_artifact(canary.loaded)
        self._canary = None
        self._failures = 0
        self.stats.consecutive_failures = 0
        self.stats.promotions += 1
        self.stats.last_promotion_at = _now_iso()
        self.stats.state = "idle"
        self.stats.candidate = None
        log_event(
            logger,
            "supervisor.promote",
            version=canary.loaded.version,
            previous=canary.base,
            accuracy=f"{cand_acc:.3f}",
        )

    def _reject_canary(self, canary: _Canary, reason: str) -> None:
        """Discard a candidate that did not earn promotion.  The version
        stays on disk (CURRENT never pointed at it) but nothing serves it;
        a rejection arms the same backoff as a failed retrain."""
        self._canary = None
        self._distrusted.add(canary.loaded.version)
        self._on_retrain_failure(RetrainFailed(f"canary rejected: {reason}"))
        # _on_retrain_failure counts it as a failed retrain for backoff
        # purposes; keep the canary-specific counter honest too
        self.stats.retrains_failed -= 1
        self.stats.canary_rejections += 1
        log_event(
            logger,
            "supervisor.canary_reject",
            level=logging.WARNING,
            candidate=canary.loaded.version,
            reason=reason[:200],
        )

    def _drop_canary(self, *, reason: str) -> None:
        if self._canary is None:
            return
        dropped = self._canary
        self._canary = None
        self._distrusted.add(dropped.loaded.version)
        self.stats.state = "idle"
        self.stats.candidate = None
        log_event(
            logger,
            "supervisor.canary_dropped",
            candidate=dropped.loaded.version,
            reason=reason,
        )

    # -- rollback --------------------------------------------------------

    async def _rollback(self) -> None:
        current = self.service.scorer.artifact.version
        skip = {current} | self._distrusted
        loop = asyncio.get_running_loop()
        try:
            loaded = await loop.run_in_executor(
                None, lambda: self.service.store.load_with_fallback(skip=skip)
            )
        except ArtifactError as exc:
            # nowhere to roll back to — keep serving the suspect model and
            # say so loudly rather than serving nothing
            self.stats.last_error = f"rollback impossible: {exc}"
            log_event(
                logger,
                "supervisor.rollback_impossible",
                level=logging.ERROR,
                current=current,
                error=str(exc)[:200],
            )
            return
        await loop.run_in_executor(None, self.service.store.promote, loaded.version)
        self.service.mark_bad_version(current)
        self.service.adopt_artifact(loaded)
        self.stats.rollbacks += 1
        self.stats.last_rollback_at = _now_iso()
        self.stats.state = "idle"
        log_event(
            logger,
            "supervisor.rollback",
            level=logging.WARNING,
            rolled_back=current,
            serving=loaded.version,
        )
