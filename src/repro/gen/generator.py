"""Seed-deterministic synthesis of attack/benign traces and sharded corpora.

Determinism contract (pinned by ``tests/test_gen_properties.py``):

- Every random draw for trace ``i`` of family ``f`` under corpus seed ``s``
  comes from a Philox counter stream keyed by
  ``sha256("repro.gen/<GEN_VERSION>|seed=<s>|family=<f>|index=<i>")``.
  ``random_raw`` is the raw Philox-4x64 block output — a fixed published
  algorithm, stable across numpy versions and platforms (unlike
  ``Generator.normal`` etc., whose streams numpy does not pin).
- Raw 64-bit words become uniforms via ``(u >> 11) * 2**-53`` and
  gaussian-ish noise via an Irwin–Hall sum of 12 uniforms — add/mul only,
  so results are bit-identical everywhere IEEE-754 holds.
- A trace's bytes therefore depend only on ``(spec, corpus seed, index)``:
  regenerating a corpus with any ``--workers`` value is byte-identical.

Corpus layout: ``<out>/shard_<hh>/<family>_<index>_<hash12>.pkl`` where
``hh``/``hash12`` come from the sha256 of the encoded payload, so files
spread uniformly over 256 shards and the content-addressed decode cache
stays balanced.  ``MANIFEST.json`` records counts, per-family digests, and
a corpus digest — all derived from payload hashes, never from wall-clock.
"""

from __future__ import annotations

import hashlib
import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..errors import GenSpecError
from ..sim.trace import TRACE_VERSION, Trace, encode_trace
from ..telemetry import get_logger, log_event
from .families import BASELINE, STAT_NAMES, FamilySpec, resolve_families

logger = get_logger("repro.gen")

#: bump when the synthesis math or trace layout changes; part of every
#: stream key, so old and new corpora can never silently mix
GEN_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1

#: synthetic traces carry this interval length (samples per stat window)
INTERVAL_TICKS = 10_000

_BASELINE_VEC = np.array([BASELINE[name] for name in STAT_NAMES], dtype=np.float64)


# ---------------------------------------------------------------------------
# deterministic randomness
# ---------------------------------------------------------------------------


def trace_key(seed: int, family: str, index: int) -> bytes:
    """The 32-byte stream key for one trace; sole source of its randomness."""
    tag = f"repro.gen/{GEN_VERSION}|seed={seed}|family={family}|index={index}"
    return hashlib.sha256(tag.encode("ascii")).digest()


class _Stream:
    """Uniform/gauss draws off one Philox raw stream (see module docstring)."""

    def __init__(self, key: bytes):
        philox_key = np.frombuffer(key[:16], dtype=np.uint64)  # Philox-4x64 takes a 2-word key
        self._bits = np.random.Philox(key=philox_key)

    def uniforms(self, n: int) -> np.ndarray:
        raw = self._bits.random_raw(n)
        return (raw >> np.uint64(11)) * (2.0**-53)

    def uniform(self, lo: float, hi: float) -> float:
        return float(lo + (hi - lo) * self.uniforms(1)[0])

    def integer(self, lo: int, hi: int) -> int:
        """Inclusive-bounds integer draw."""
        span = hi - lo + 1
        return lo + min(int(self.uniforms(1)[0] * span), span - 1)

    def gauss(self, shape: tuple[int, ...]) -> np.ndarray:
        """Irwin–Hall(12) - 6: mean 0, variance 1, support [-6, 6]."""
        n = int(np.prod(shape))
        u = self.uniforms(12 * n).reshape(n, 12)
        return (u.sum(axis=1) - 6.0).reshape(shape)


# ---------------------------------------------------------------------------
# single-trace synthesis
# ---------------------------------------------------------------------------


def synthesize_trace(spec: FamilySpec, seed: int, index: int) -> Trace:
    """Deterministically synthesize trace ``index`` of ``spec``.

    Row model per interval: ``baseline * (1 + shift) + burst * amplitude *
    signature * baseline + noise * sqrt(baseline) * gauss``, clipped at zero
    (counters cannot go negative).
    """
    stream = _Stream(trace_key(seed, spec.name, index))
    n_intervals = stream.integer(*spec.intervals)
    burst_frac = stream.uniform(*spec.burst_frac)
    amplitude = stream.uniform(*spec.amplitude)

    n_cols = len(STAT_NAMES)
    rows = np.tile(_BASELINE_VEC, (n_intervals, 1))
    for col, shift in spec.baseline_shift.items():
        rows[:, STAT_NAMES.index(col)] += shift * BASELINE[col]

    burst = (stream.uniforms(n_intervals) < burst_frac).astype(np.float64)
    if spec.signature and amplitude > 0.0:
        delta = np.zeros(n_cols, dtype=np.float64)
        for col, weight in spec.signature.items():
            delta[STAT_NAMES.index(col)] = weight * BASELINE[col]
        rows += amplitude * burst[:, None] * delta[None, :]

    rows += spec.noise * np.sqrt(_BASELINE_VEC)[None, :] * stream.gauss((n_intervals, n_cols))
    np.clip(rows, 0.0, None, out=rows)

    return Trace(
        program=spec.name,
        label=spec.label,
        attack_class=spec.attack_class,
        interval=INTERVAL_TICKS,
        rows=rows,
        stat_names=list(STAT_NAMES),
        meta={
            "family": spec.name,
            "gen_version": GEN_VERSION,
            "seed": seed,
            "index": index,
            "burst_intervals": int(burst.sum()),
        },
    )


def encode_synthetic(spec: FamilySpec, seed: int, index: int) -> tuple[bytes, str]:
    """Synthesize + encode one trace; returns ``(payload, sha256 hex)``."""
    payload = encode_trace(synthesize_trace(spec, seed, index))
    return payload, hashlib.sha256(payload).hexdigest()


def shard_relpath(family: str, index: int, digest: str) -> Path:
    """Payload-hash-sharded corpus-relative path for one trace file."""
    return Path(f"shard_{digest[:2]}") / f"{family}_{index:06d}_{digest[:12]}.pkl"


# ---------------------------------------------------------------------------
# corpus generation
# ---------------------------------------------------------------------------


@dataclass
class GenReport:
    """What one corpus generation produced."""

    out_dir: str
    seed: int
    count: int
    families: dict[str, int]
    corpus_digest: str
    family_digests: dict[str, str] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def describe(self) -> dict:
        return {
            "out_dir": self.out_dir,
            "seed": self.seed,
            "count": self.count,
            "families": dict(self.families),
            "corpus_digest": self.corpus_digest,
            "elapsed_s": round(self.elapsed_s, 3),
        }


def allocate_counts(specs: list[FamilySpec], count: int) -> dict[str, int]:
    """Deterministically split ``count`` traces across families: equal shares,
    remainder to the earliest families in registry order."""
    if count < 1:
        raise GenSpecError(f"count must be >= 1, got {count}")
    if not specs:
        raise GenSpecError("no families selected")
    base, extra = divmod(count, len(specs))
    return {spec.name: base + (1 if i < extra else 0) for i, spec in enumerate(specs)}


def _emit_one(args: tuple[dict, int, int, str]) -> tuple[str, int, str]:
    """Worker task: synthesize, encode, and write one trace file.

    Returns ``(family, index, digest)``.  Spec travels as its dict form so
    the task tuple pickles cheaply and identically everywhere.
    """
    spec_doc, seed, index, out_dir = args
    spec = FamilySpec.from_dict(spec_doc)
    payload, digest = encode_synthetic(spec, seed, index)
    path = Path(out_dir) / shard_relpath(spec.name, index, digest)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    tmp.write_bytes(payload)
    tmp.replace(path)
    return spec.name, index, digest


def generate_corpus(
    out_dir,
    *,
    families="all",
    count: int = 1000,
    seed: int = 7,
    workers: int = 1,
    registry: dict[str, FamilySpec] | None = None,
) -> GenReport:
    """Materialize a sharded synthetic corpus under ``out_dir``.

    Byte-identical for a fixed ``(families, count, seed)`` regardless of
    ``workers``; re-running over an existing corpus rewrites the same bytes.
    """
    import time

    t0 = time.monotonic()
    specs = resolve_families(families, registry=registry)
    counts = allocate_counts(specs, count)
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)

    tasks = [
        (spec.to_dict(), seed, index, str(out_path))
        for spec in specs
        for index in range(counts[spec.name])
    ]
    log_event(
        logger,
        "gen.start",
        out=str(out_path),
        families=len(specs),
        count=count,
        seed=seed,
        workers=workers,
    )

    digests: dict[tuple[str, int], str] = {}
    if workers <= 1 or len(tasks) < 2:
        for task in tasks:
            family, index, digest = _emit_one(task)
            digests[(family, index)] = digest
    else:
        n_workers = max(1, min(workers, len(tasks)))
        with ProcessPoolExecutor(max_workers=n_workers) as executor:
            chunksize = max(1, len(tasks) // (n_workers * 8))
            for family, index, digest in executor.map(_emit_one, tasks, chunksize=chunksize):
                digests[(family, index)] = digest

    family_digests: dict[str, str] = {}
    for spec in specs:
        h = hashlib.sha256()
        for index in range(counts[spec.name]):
            h.update(bytes.fromhex(digests[(spec.name, index)]))
        family_digests[spec.name] = h.hexdigest()
    corpus_h = hashlib.sha256()
    for spec in specs:
        corpus_h.update(bytes.fromhex(family_digests[spec.name]))
    corpus_digest = corpus_h.hexdigest()

    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "gen_version": GEN_VERSION,
        "trace_version": TRACE_VERSION,
        "seed": seed,
        "count": count,
        "interval_ticks": INTERVAL_TICKS,
        "stat_names": list(STAT_NAMES),
        "families": {
            spec.name: {
                "count": counts[spec.name],
                "label": spec.label,
                # downstream consumers (dataset-cache provenance, per-family
                # dashboards) read the kind/class without re-deriving it
                # from the sign of ``label``
                "kind": "attack" if spec.is_attack else "benign",
                "attack_class": spec.attack_class,
                "digest": family_digests[spec.name],
                "spec": spec.to_dict(),
            }
            for spec in specs
        },
        "corpus_digest": corpus_digest,
    }
    manifest_path = out_path / MANIFEST_NAME
    tmp = manifest_path.with_suffix(".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    tmp.replace(manifest_path)

    report = GenReport(
        out_dir=str(out_path),
        seed=seed,
        count=count,
        families=counts,
        corpus_digest=corpus_digest,
        family_digests=family_digests,
        elapsed_s=time.monotonic() - t0,
    )
    log_event(
        logger,
        "gen.done",
        out=str(out_path),
        count=count,
        digest=corpus_digest[:12],
        elapsed=f"{report.elapsed_s:.3f}",
    )
    return report
