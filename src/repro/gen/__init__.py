"""Synthetic attack-trace generation: family profiles + deterministic corpora.

``python -m repro.gen`` materializes sharded corpora of parameterized
attack/benign traces (Spectre v1/v2/v4, Meltdown, Flush+Reload, Prime+Probe,
evasive variants, benign hard negatives) through the standard trace codec,
so generated payloads flow through ingest/cache/features unchanged.
"""

from .families import (
    BASELINE,
    BUILTIN_FAMILIES,
    FAMILY_REGISTRY,
    STAT_NAMES,
    FamilySpec,
    load_profiles,
    resolve_families,
)
from .generator import (
    GEN_VERSION,
    MANIFEST_NAME,
    GenReport,
    allocate_counts,
    encode_synthetic,
    generate_corpus,
    shard_relpath,
    synthesize_trace,
    trace_key,
)
from .shift import (
    BUILTIN_SCHEDULES,
    PRE_SHIFT_MIX,
    ShiftPhase,
    ShiftSchedule,
    load_schedule,
    perturb_spec,
)

__all__ = [
    "BUILTIN_SCHEDULES",
    "PRE_SHIFT_MIX",
    "ShiftPhase",
    "ShiftSchedule",
    "load_schedule",
    "perturb_spec",
    "BASELINE",
    "BUILTIN_FAMILIES",
    "FAMILY_REGISTRY",
    "GEN_VERSION",
    "MANIFEST_NAME",
    "STAT_NAMES",
    "FamilySpec",
    "GenReport",
    "allocate_counts",
    "encode_synthetic",
    "generate_corpus",
    "load_profiles",
    "resolve_families",
    "shard_relpath",
    "synthesize_trace",
    "trace_key",
]
