"""Distribution-shift injection for the synthetic generator.

A :class:`ShiftSchedule` turns the generator into a *time-ordered stream*
whose composition changes under the detector: each phase holds a weighted
family mix plus optional per-family spec perturbations (amplitude decay,
burst-rate changes, noise inflation) that take effect at a trace index.
This is the evaluation substrate for the drift loop — a model trained on
the phase-0 mix is replayed against the stream and must notice when phase 1
arrives.

Determinism matches the rest of :mod:`repro.gen`: the family picked for
stream index ``i`` comes from its own Philox stream keyed by
``sha256("repro.gen/<v>|stream|seed=<s>|index=<i>")``, and the trace bytes
then come from the standard :func:`~repro.gen.generator.synthesize_trace`
keyed by ``(seed, family, index)`` — so a stream is a pure function of
``(schedule, seed)`` and replays are byte-identical.

Schedules are plain data (JSON-roundtrippable) so a replay config can be
committed next to its bench results::

    {"phases": [
        {"at": 0,   "mix": {"spectre_v1": 1, "benign_compute": 1}},
        {"at": 300, "mix": {"evasive_spectre_v1": 1, "benign_compute": 1},
         "perturb": {"evasive_spectre_v1": {"amplitude_mul": 0.8}}}
    ]}
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..errors import GenSpecError
from ..sim.trace import Trace
from .families import FAMILY_REGISTRY, FamilySpec
from .generator import GEN_VERSION, _Stream, synthesize_trace

#: spec knobs a phase may perturb, all multiplicative so a perturbation of
#: 1.0 is the identity and composition stays intuitive
PERTURB_KNOBS = ("amplitude_mul", "burst_mul", "noise_mul", "signature_mul")


def stream_key(seed: int, index: int) -> bytes:
    """The 32-byte stream key deciding which family stream index ``i`` is."""
    tag = f"repro.gen/{GEN_VERSION}|stream|seed={seed}|index={index}"
    return hashlib.sha256(tag.encode("ascii")).digest()


def perturb_spec(spec: FamilySpec, knobs: dict | None) -> FamilySpec:
    """A copy of ``spec`` with its bounded knobs scaled.

    ``amplitude_mul`` / ``burst_mul`` / ``noise_mul`` scale the respective
    sampling bounds (burst clamped into [0, 1], noise into (0, 10]);
    ``signature_mul`` scales every per-column footprint weight.  The result
    passes the same :class:`FamilySpec` validation as a builtin, so a
    perturbation can never produce an out-of-contract family.
    """
    if not knobs:
        return spec
    unknown = set(knobs) - set(PERTURB_KNOBS)
    if unknown:
        raise GenSpecError(f"unknown perturbation knobs {sorted(unknown)}")
    for name, value in knobs.items():
        if not isinstance(value, (int, float)) or not (0.0 < float(value) <= 100.0):
            raise GenSpecError(f"perturbation {name}={value!r} outside (0, 100]")
    amp = float(knobs.get("amplitude_mul", 1.0))
    burst = float(knobs.get("burst_mul", 1.0))
    noise = float(knobs.get("noise_mul", 1.0))
    sig = float(knobs.get("signature_mul", 1.0))
    return FamilySpec(
        name=spec.name,
        label=spec.label,
        intervals=spec.intervals,
        burst_frac=(
            min(spec.burst_frac[0] * burst, 1.0),
            min(spec.burst_frac[1] * burst, 1.0),
        ),
        amplitude=(spec.amplitude[0] * amp, spec.amplitude[1] * amp),
        signature={col: w * sig for col, w in spec.signature.items()},
        baseline_shift=dict(spec.baseline_shift),
        noise=min(spec.noise * noise, 10.0),
    )


@dataclass(frozen=True)
class ShiftPhase:
    """One stretch of the stream: starts at ``at``, draws families from
    ``mix`` (weights, not probabilities), perturbing specs per ``perturb``."""

    at: int
    mix: dict[str, float]
    perturb: dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise GenSpecError(f"phase start {self.at} must be >= 0")
        if not self.mix:
            raise GenSpecError(f"phase at {self.at} has an empty family mix")
        for family, weight in self.mix.items():
            if not isinstance(weight, (int, float)) or not (0.0 < float(weight)):
                raise GenSpecError(
                    f"phase at {self.at}: mix weight {family}={weight!r} must be > 0"
                )
        for family in self.perturb:
            if family not in self.mix:
                raise GenSpecError(
                    f"phase at {self.at}: perturbation for {family!r} not in its mix"
                )

    def to_dict(self) -> dict:
        doc: dict = {"at": self.at, "mix": dict(self.mix)}
        if self.perturb:
            doc["perturb"] = {f: dict(k) for f, k in self.perturb.items()}
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ShiftPhase":
        if not isinstance(doc, dict):
            raise GenSpecError(f"phase must be a dict, got {type(doc).__name__}")
        unknown = set(doc) - {"at", "mix", "perturb"}
        if unknown:
            raise GenSpecError(f"unknown phase fields {sorted(unknown)}")
        try:
            return cls(
                at=int(doc.get("at", 0)),
                mix=dict(doc["mix"]),
                perturb={f: dict(k) for f, k in dict(doc.get("perturb", {})).items()},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise GenSpecError(f"malformed phase: {exc}") from exc


class ShiftSchedule:
    """An ordered list of phases covering stream indices [0, inf).

    Phase ``at`` values must be strictly increasing and start at 0; indices
    beyond the last phase's start stay in that phase forever, so a replay
    can extend past its nominal length without falling off the schedule.
    """

    def __init__(self, phases: list[ShiftPhase], *, registry: dict[str, FamilySpec] | None = None):
        if not phases:
            raise GenSpecError("schedule needs at least one phase")
        starts = [p.at for p in phases]
        if starts[0] != 0:
            raise GenSpecError(f"first phase must start at 0, got {starts[0]}")
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise GenSpecError(f"phase starts must be strictly increasing, got {starts}")
        self.phases = list(phases)
        self._starts = starts
        reg = registry if registry is not None else FAMILY_REGISTRY
        # resolve + perturb every (phase, family) spec once, up front — this
        # both validates the schedule eagerly and makes per-trace synthesis
        # a dict lookup instead of a spec rebuild
        self._specs: list[dict[str, FamilySpec]] = []
        for phase in self.phases:
            specs: dict[str, FamilySpec] = {}
            for family in phase.mix:
                if family not in reg:
                    raise GenSpecError(
                        f"phase at {phase.at}: unknown family {family!r}; "
                        f"known: {', '.join(sorted(reg))}"
                    )
                specs[family] = perturb_spec(reg[family], phase.perturb.get(family))
            self._specs.append(specs)

    # -- structure -------------------------------------------------------

    def phase_index(self, index: int) -> int:
        if index < 0:
            raise GenSpecError(f"stream index {index} must be >= 0")
        return bisect_right(self._starts, index) - 1

    def phase_for(self, index: int) -> ShiftPhase:
        return self.phases[self.phase_index(index)]

    def shift_points(self) -> list[int]:
        """Stream indices where the distribution changes (phase 1+ starts)."""
        return self._starts[1:]

    def pre_shift(self) -> "ShiftSchedule":
        """A schedule holding only phase 0 forever — the pre-shift world a
        baseline model is trained on, at any stream length."""
        return ShiftSchedule([self.phases[0]])

    def families(self) -> list[str]:
        seen: dict[str, None] = {}
        for phase in self.phases:
            for family in phase.mix:
                seen.setdefault(family)
        return list(seen)

    def to_dict(self) -> dict:
        return {"phases": [p.to_dict() for p in self.phases]}

    @classmethod
    def from_dict(cls, doc: dict, *, registry: dict[str, FamilySpec] | None = None) -> "ShiftSchedule":
        if not isinstance(doc, dict) or not isinstance(doc.get("phases"), list):
            raise GenSpecError("schedule must be {'phases': [...]}")
        return cls([ShiftPhase.from_dict(p) for p in doc["phases"]], registry=registry)

    # -- synthesis -------------------------------------------------------

    def spec_at(self, seed: int, index: int) -> FamilySpec:
        """The (possibly perturbed) family spec stream index ``index`` draws."""
        k = self.phase_index(index)
        phase = self.phases[k]
        u = float(_Stream(stream_key(seed, index)).uniforms(1)[0])
        # stable pick order: sorted family names, cumulative weights
        items = sorted(phase.mix.items())
        total = sum(w for _, w in items)
        acc = 0.0
        for family, weight in items:
            acc += weight / total
            if u < acc:
                return self._specs[k][family]
        return self._specs[k][items[-1][0]]

    def synthesize(self, seed: int, index: int) -> Trace:
        """Trace for stream index ``index`` — a pure function of
        ``(schedule, seed, index)``."""
        return synthesize_trace(self.spec_at(seed, index), seed, index)

    def stream(self, seed: int, count: int, *, start: int = 0) -> Iterator[tuple[int, Trace]]:
        """Yield ``(index, trace)`` for ``count`` indices from ``start``."""
        for index in range(start, start + count):
            yield index, self.synthesize(seed, index)


# ---------------------------------------------------------------------------
# builtin schedules
# ---------------------------------------------------------------------------

#: the mix a pre-shift model is trained on: two loud attacks, two benign
#: workloads (one a hard negative for flush_reload)
PRE_SHIFT_MIX: dict[str, float] = {
    "spectre_v1": 1.0,
    "flush_reload": 1.0,
    "benign_compute": 1.0,
    "benign_stream": 1.0,
}


def evasive_shift(shift_at: int) -> ShiftSchedule:
    """Attack variants go low-and-slow at ``shift_at``: the loud families are
    replaced by their evasive forms (3–12% burst rate, quarter amplitude)
    while the benign mix stays put.  A frozen model keeps its benign
    accuracy but starts missing attacks wholesale — the canonical silent
    degradation the self-healing loop exists for."""
    return ShiftSchedule(
        [
            ShiftPhase(at=0, mix=dict(PRE_SHIFT_MIX)),
            ShiftPhase(
                at=shift_at,
                mix={
                    "evasive_spectre_v1": 1.0,
                    "evasive_flush_reload": 1.0,
                    "benign_compute": 1.0,
                    "benign_stream": 1.0,
                },
            ),
        ]
    )


def novel_probe_shift(shift_at: int) -> ShiftSchedule:
    """The attack *technique* changes at ``shift_at``: Prime+Probe (a cache
    footprint the pre-shift mix never exhibits) replaces the trained attacks,
    and an untrained benign hard negative (pointer chasing) joins the benign
    side.  A model trained on the pre-shift mix drops to near coin-flip on
    this stream while staying perfectly calm — the archetypal silent failure
    the self-healing loop must catch from labeled feedback."""
    return ShiftSchedule(
        [
            ShiftPhase(at=0, mix=dict(PRE_SHIFT_MIX)),
            ShiftPhase(
                at=shift_at,
                mix={
                    "prime_probe": 1.0,
                    "benign_pointer_chase": 1.0,
                    "benign_compute": 1.0,
                    "benign_stream": 1.0,
                },
            ),
        ]
    )


def attenuation_shift(shift_at: int, *, amplitude_mul: float = 0.35, burst_mul: float = 0.4) -> ShiftSchedule:
    """Same families, perturbed parameters: at ``shift_at`` the attack
    signatures decay in amplitude and burst rate — distribution shift via
    knob drift rather than family replacement."""
    perturb = {"amplitude_mul": amplitude_mul, "burst_mul": burst_mul}
    return ShiftSchedule(
        [
            ShiftPhase(at=0, mix=dict(PRE_SHIFT_MIX)),
            ShiftPhase(
                at=shift_at,
                mix=dict(PRE_SHIFT_MIX),
                perturb={"spectre_v1": dict(perturb), "flush_reload": dict(perturb)},
            ),
        ]
    )


#: builtin schedule factories, each taking the shift index
BUILTIN_SCHEDULES = {
    "evasive_shift": evasive_shift,
    "novel_probe_shift": novel_probe_shift,
    "attenuation_shift": attenuation_shift,
}


def load_schedule(
    spec: str, *, registry: dict[str, FamilySpec] | None = None
) -> ShiftSchedule:
    """Resolve a schedule argument: ``"<builtin>:<shift_at>"`` (e.g.
    ``evasive_shift:300``) or a path to a JSON schedule file."""
    if ":" in spec and not Path(spec).exists():
        name, _, arg = spec.partition(":")
        if name in BUILTIN_SCHEDULES:
            try:
                shift_at = int(arg)
            except ValueError:
                raise GenSpecError(
                    f"builtin schedule {name!r} needs an integer shift index, got {arg!r}"
                ) from None
            if shift_at < 1:
                raise GenSpecError(f"shift index must be >= 1, got {shift_at}")
            return BUILTIN_SCHEDULES[name](shift_at)
    if spec in BUILTIN_SCHEDULES:
        raise GenSpecError(f"builtin schedule {spec!r} needs a shift index: {spec}:<at>")
    try:
        doc = json.loads(Path(spec).read_text())
    except (OSError, ValueError) as exc:
        raise GenSpecError(f"cannot load schedule from {spec}: {exc}") from exc
    return ShiftSchedule.from_dict(doc, registry=registry)
