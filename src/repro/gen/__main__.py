"""CLI entry point: ``python -m repro.gen [options]``.

Materializes a sharded synthetic corpus and prints a JSON summary (counts,
corpus digest).  Regenerating with the same ``--families/--count/--seed`` is
byte-identical for any ``--workers`` value.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ReproError
from .families import FAMILY_REGISTRY, load_profiles
from .generator import generate_corpus


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gen",
        description="Generate a deterministic synthetic attack/benign trace corpus.",
    )
    parser.add_argument("--out", default="runs/gen_corpus", help="corpus output directory")
    parser.add_argument(
        "--families",
        default="all",
        help='comma-separated family names, or "all" / "attacks" / "benign" '
        f"(known: {', '.join(FAMILY_REGISTRY)})",
    )
    parser.add_argument("--count", type=int, default=1000, help="total traces to generate")
    parser.add_argument("--seed", type=int, default=7, help="corpus seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="generator worker processes (semantics-free: output is byte-identical)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="JSON",
        help="family-profile file overlaying/extending the builtin registry",
    )
    parser.add_argument(
        "--list-families",
        action="store_true",
        help="print the resolved family registry as JSON and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        registry = load_profiles(args.profile) if args.profile else dict(FAMILY_REGISTRY)
        if args.list_families:
            print(
                json.dumps(
                    {name: spec.to_dict() for name, spec in registry.items()}, indent=2
                )
            )
            return 0
        families = [f.strip() for f in args.families.split(",") if f.strip()] or "all"
        report = generate_corpus(
            args.out,
            families=families,
            count=args.count,
            seed=args.seed,
            workers=args.workers,
            registry=registry,
        )
    except ReproError as exc:
        print(f"generation failed: [{exc.code}] {exc}", file=sys.stderr)
        return 2
    print(json.dumps(report.describe(), indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
