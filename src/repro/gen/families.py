"""Family profiles for the synthetic trace generator.

A :class:`FamilySpec` is a *config-driven* description of one attack family
(or benign workload): which hardware-counter columns its footprint touches,
how strongly, and how bursty its activity is.  Specs are plain data — they
can be built from JSON profiles (:func:`load_profiles`) so new families need
no code — and every numeric knob is a closed ``(lo, hi)`` bound that the
generator draws from and the property tests assert against.

The built-in registry covers the variants the ML-detection literature keeps
apart (Spectre v1/v2/v4, Meltdown, Flush+Reload, Prime+Probe), their
evasive/low-rate forms, and benign workloads chosen as hard negatives
(pointer chasing looks like cache probing; streaming looks like Flush+Reload
reload traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GenSpecError


#: the synthetic hardware-state schema: one column per counter, per interval.
#: Chosen to mirror the gem5 stat groups the real corpus exposes (memory
#: controller, cache hierarchy, TLBs, speculation) at a width small enough
#: to keep 100k-trace corpora cheap.
STAT_NAMES: tuple[str, ...] = (
    "cpu.ipc",
    "cpu.branchPred.lookups",
    "cpu.branchPred.mispredicts",
    "cpu.squashedInsts",
    "cpu.memOrderViolations",
    "cpu.specLoads",
    "icache.overallMisses",
    "dcache.overallAccesses",
    "dcache.overallMisses",
    "dcache.replacements",
    "dcache.writebacks",
    "l2.overallAccesses",
    "l2.overallMisses",
    "l2.evictions",
    "llc.overallAccesses",
    "llc.overallMisses",
    "llc.evictions",
    "dtb.misses",
    "itb.misses",
    "lsq.loadToUseAvg",
    "mem.readReqs",
    "mem.writeReqs",
    "mem.rowMisses",
    "mem.busUtil",
)

_STAT_INDEX = {name: i for i, name in enumerate(STAT_NAMES)}

#: per-column benign baseline mean; the quiet machine every family perturbs
BASELINE: dict[str, float] = {
    "cpu.ipc": 1.4,
    "cpu.branchPred.lookups": 180.0,
    "cpu.branchPred.mispredicts": 6.0,
    "cpu.squashedInsts": 40.0,
    "cpu.memOrderViolations": 0.5,
    "cpu.specLoads": 90.0,
    "icache.overallMisses": 3.0,
    "dcache.overallAccesses": 300.0,
    "dcache.overallMisses": 12.0,
    "dcache.replacements": 10.0,
    "dcache.writebacks": 5.0,
    "l2.overallAccesses": 25.0,
    "l2.overallMisses": 6.0,
    "l2.evictions": 5.0,
    "llc.overallAccesses": 8.0,
    "llc.overallMisses": 2.0,
    "llc.evictions": 1.5,
    "dtb.misses": 1.0,
    "itb.misses": 0.4,
    "lsq.loadToUseAvg": 9.0,
    "mem.readReqs": 4.0,
    "mem.writeReqs": 2.0,
    "mem.rowMisses": 1.0,
    "mem.busUtil": 6.0,
}


@dataclass(frozen=True)
class FamilySpec:
    """One generatable family: label, footprint, and bounded knobs.

    ``signature`` maps stat names to the per-unit-amplitude delta the family
    adds during attack bursts; ``baseline_shift`` drifts the quiet-phase mean
    (benign workloads are *only* a shift).  All ``(lo, hi)`` pairs are closed
    bounds the generator samples uniformly from — the property suite asserts
    every generated trace lands inside them.
    """

    name: str
    label: int  # +1 attack, -1 benign
    intervals: tuple[int, int] = (8, 24)
    #: fraction of intervals carrying the attack signature
    burst_frac: tuple[float, float] = (0.4, 0.8)
    #: signature scale drawn per trace; evasive variants sit well below 1.0
    amplitude: tuple[float, float] = (0.8, 1.4)
    #: per-column bursty footprint, units of the column baseline
    signature: dict[str, float] = field(default_factory=dict)
    #: per-column always-on drift (workload character, not attack activity)
    baseline_shift: dict[str, float] = field(default_factory=dict)
    #: gaussian noise scale, units of sqrt(baseline)
    noise: float = 1.0

    @property
    def is_attack(self) -> bool:
        return self.label > 0

    @property
    def attack_class(self) -> str | None:
        return self.name if self.is_attack else None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise GenSpecError(f"bad family name {self.name!r}")
        if self.label not in (-1, 1):
            raise GenSpecError(f"{self.name}: label must be -1 or +1, got {self.label}")
        lo, hi = self.intervals
        if not (1 <= lo <= hi <= 10_000):
            raise GenSpecError(f"{self.name}: intervals bounds {self.intervals} invalid")
        for knob, (klo, khi) in (("burst_frac", self.burst_frac), ("amplitude", self.amplitude)):
            if not (0.0 <= klo <= khi):
                raise GenSpecError(f"{self.name}: {knob} bounds ({klo}, {khi}) invalid")
        if self.burst_frac[1] > 1.0:
            raise GenSpecError(f"{self.name}: burst_frac upper bound exceeds 1.0")
        if not (0.0 < self.noise <= 10.0):
            raise GenSpecError(f"{self.name}: noise {self.noise} outside (0, 10]")
        for which, cols in (("signature", self.signature), ("baseline_shift", self.baseline_shift)):
            for col in cols:
                if col not in _STAT_INDEX:
                    raise GenSpecError(f"{self.name}: {which} column {col!r} not in STAT_NAMES")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "label": self.label,
            "intervals": list(self.intervals),
            "burst_frac": list(self.burst_frac),
            "amplitude": list(self.amplitude),
            "signature": dict(self.signature),
            "baseline_shift": dict(self.baseline_shift),
            "noise": self.noise,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FamilySpec":
        if not isinstance(doc, dict):
            raise GenSpecError(f"family spec must be a dict, got {type(doc).__name__}")
        known = {
            "name",
            "label",
            "intervals",
            "burst_frac",
            "amplitude",
            "signature",
            "baseline_shift",
            "noise",
        }
        unknown = set(doc) - known
        if unknown:
            raise GenSpecError(f"unknown family spec fields {sorted(unknown)}")
        try:
            kwargs = dict(doc)
            for pair in ("intervals", "burst_frac", "amplitude"):
                if pair in kwargs:
                    lo, hi = kwargs[pair]
                    kwargs[pair] = (lo, hi)
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise GenSpecError(f"malformed family spec: {exc}") from exc


def _evasive(spec: FamilySpec) -> FamilySpec:
    """Low-rate variant: same footprint, stretched thin in time and amplitude."""
    return FamilySpec(
        name=f"evasive_{spec.name}",
        label=spec.label,
        intervals=(max(spec.intervals[0], 16), max(spec.intervals[1], 48)),
        burst_frac=(0.03, 0.12),
        amplitude=(0.25, 0.5),
        signature=dict(spec.signature),
        baseline_shift=dict(spec.baseline_shift),
        noise=spec.noise,
    )


_SPECTRE_V1 = FamilySpec(
    name="spectre_v1",
    label=1,
    signature={
        "cpu.branchPred.mispredicts": 6.0,
        "cpu.squashedInsts": 4.0,
        "cpu.specLoads": 2.5,
        "dcache.overallMisses": 2.0,
        "llc.overallMisses": 3.0,
        "cpu.ipc": -0.3,
    },
)

_FLUSH_RELOAD = FamilySpec(
    name="flush_reload",
    label=1,
    signature={
        "llc.overallMisses": 8.0,
        "llc.overallAccesses": 4.0,
        "dcache.replacements": 3.0,
        "mem.readReqs": 4.0,
        "mem.rowMisses": 3.0,
        "lsq.loadToUseAvg": 1.5,
    },
)

BUILTIN_FAMILIES: tuple[FamilySpec, ...] = (
    # -- attacks ---------------------------------------------------------
    _SPECTRE_V1,
    FamilySpec(
        name="spectre_v2",
        label=1,
        signature={
            "cpu.branchPred.lookups": 3.0,
            "cpu.branchPred.mispredicts": 9.0,
            "icache.overallMisses": 4.0,
            "itb.misses": 5.0,
            "cpu.squashedInsts": 3.0,
            "cpu.ipc": -0.4,
        },
    ),
    FamilySpec(
        name="spectre_v4",
        label=1,
        signature={
            "cpu.memOrderViolations": 12.0,
            "lsq.loadToUseAvg": 2.5,
            "cpu.squashedInsts": 5.0,
            "cpu.specLoads": 2.0,
            "dcache.writebacks": 2.0,
        },
    ),
    FamilySpec(
        name="meltdown",
        label=1,
        burst_frac=(0.5, 0.9),
        signature={
            "cpu.squashedInsts": 8.0,
            "dtb.misses": 10.0,
            "llc.overallMisses": 4.0,
            "cpu.specLoads": 3.0,
            "cpu.ipc": -0.6,
            "l2.overallMisses": 2.5,
        },
    ),
    _FLUSH_RELOAD,
    FamilySpec(
        name="prime_probe",
        label=1,
        signature={
            "l2.overallAccesses": 5.0,
            "l2.overallMisses": 4.0,
            "l2.evictions": 6.0,
            "llc.evictions": 5.0,
            "dcache.overallAccesses": 1.5,
            "mem.busUtil": 2.0,
        },
    ),
    _evasive(_SPECTRE_V1),
    _evasive(_FLUSH_RELOAD),
    # -- benign workloads ------------------------------------------------
    FamilySpec(
        name="benign_compute",
        label=-1,
        burst_frac=(0.0, 0.0),
        amplitude=(0.0, 0.0),
        baseline_shift={"cpu.ipc": 0.6, "cpu.branchPred.lookups": 0.4},
    ),
    FamilySpec(
        name="benign_stream",
        label=-1,
        burst_frac=(0.3, 0.7),
        amplitude=(0.6, 1.2),
        # hard negative for flush_reload: bursts of heavy memory read
        # traffic, but without the miss/eviction churn of a probe loop
        signature={
            "mem.readReqs": 2.5,
            "mem.busUtil": 2.0,
            "llc.overallAccesses": 2.0,
            "dcache.overallAccesses": 1.2,
        },
        baseline_shift={"mem.writeReqs": 0.8},
    ),
    FamilySpec(
        name="benign_pointer_chase",
        label=-1,
        burst_frac=(0.3, 0.7),
        amplitude=(0.5, 1.0),
        # hard negative for prime_probe: miss-heavy, latency-bound phases
        signature={
            "dcache.overallMisses": 1.8,
            "dtb.misses": 1.5,
            "lsq.loadToUseAvg": 1.2,
            "cpu.ipc": -0.4,
        },
    ),
    FamilySpec(
        name="benign_branchy",
        label=-1,
        burst_frac=(0.3, 0.7),
        amplitude=(0.5, 1.0),
        # hard negative for spectre: mispredict-prone control-flow phases
        signature={
            "cpu.branchPred.lookups": 1.5,
            "cpu.branchPred.mispredicts": 2.5,
            "cpu.squashedInsts": 1.2,
        },
    ),
)

FAMILY_REGISTRY: dict[str, FamilySpec] = {spec.name: spec for spec in BUILTIN_FAMILIES}


def resolve_families(names, *, registry: dict[str, FamilySpec] | None = None) -> list[FamilySpec]:
    """Resolve a family selection to specs, preserving registry order.

    ``names`` is an iterable of family names, or the strings ``"all"`` /
    ``"attacks"`` / ``"benign"``.
    """
    registry = registry if registry is not None else FAMILY_REGISTRY
    if isinstance(names, str):
        names = [names]
    names = list(names)
    if names in (["all"], []):
        return list(registry.values())
    if names == ["attacks"]:
        return [s for s in registry.values() if s.is_attack]
    if names == ["benign"]:
        return [s for s in registry.values() if not s.is_attack]
    specs = []
    for name in names:
        if name not in registry:
            raise GenSpecError(
                f"unknown family {name!r}; known: {', '.join(sorted(registry))}"
            )
        specs.append(registry[name])
    return specs


def load_profiles(path) -> dict[str, FamilySpec]:
    """Load a JSON profile file: ``{"families": [spec, ...]}``.

    Returns the builtin registry overlaid with the file's families (same
    name replaces the builtin), so profiles can tweak one family or define
    a whole new corpus recipe.
    """
    import json
    from pathlib import Path

    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise GenSpecError(f"cannot load family profiles from {path}: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("families"), list):
        raise GenSpecError(f"{path}: profile file must be {{'families': [...]}}")
    registry = dict(FAMILY_REGISTRY)
    for spec_doc in doc["families"]:
        spec = FamilySpec.from_dict(spec_doc)
        registry[spec.name] = spec
    return registry
